"""The Optimal baseline: solve problem P′ exactly.

The paper solves P′ with Gurobi; we use HiGHS through
:func:`scipy.optimize.milp` (or the library's own branch-and-bound for
small instances).  With ``require_full_recovery=True`` — our reading of
the paper's "constraint of not interrupting active controllers' normal
operations" under which "optimization solver may not always generate a
feasible solution" — tight three-failure instances become genuinely
infeasible and Optimal reports no result, matching Fig. 6.

Two compilation routes produce the same standard form (asserted
bit-identical by ``tests/test_perf_compile.py``):

``compile="sparse"`` (default)
    :mod:`repro.perf.compile` assembles the matrices directly from the
    instance and, when ``warm_start="pm"``, seeds the solve with the PM
    heuristic's solution.  PM's point doubles as an *optimality
    certificate*: if its objective reaches the LP-relaxation bound to
    within less than the objective's granularity (objectives live on the
    grid ``integer + λ · integer``), PM is provably optimal and the MILP
    solve is skipped entirely.
``compile="model"``
    The original readable route through the :mod:`repro.lp.model` DSL
    and :func:`to_standard_form`, kept for cross-validation.

Both routes report the *canonical* objective ``r + λ · obj2`` recomputed
from the extracted solution (the same expression
:func:`repro.fmssm.evaluation.evaluate_solution` uses), so equal optima
compare bit-identical across routes; the solver's own value is kept in
``meta["solver_objective"]``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.exceptions import DegradedResultWarning, RungTimeoutError, SolverError
from repro.fmssm.formulation import FMSSMVariables, build_fmssm_model
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.lp import SolveResult, SolveStatus, solve
from repro.lp.branch_and_bound import solve_form_with_bnb
from repro.lp.highs import solve_form_relaxation, solve_form_with_highs
from repro.pm.algorithm import solve_pm
from repro.resilience import chaos

__all__ = ["solve_optimal", "extract_solution", "WarmChain"]

_BINARY_THRESHOLD = 0.5
#: LP objective values below this are indistinguishable from solver noise,
#: so certificates tighter than it are not trusted.
_LP_NOISE_FLOOR = 1e-7


@dataclass
class WarmChain:
    """Cross-scenario warm-start state for incremental sweeps.

    One :class:`WarmChain` is threaded through the ``optimal`` solves of
    consecutive scenarios in a minimum-Hamming-distance chain
    (:mod:`repro.perf.incremental`).  It carries the previous scenario's
    solution (repaired into the next instance and used as an extra seed)
    and the previous LP-relaxation basis (forwarded to
    :func:`repro.lp.highs.solve_form_relaxation`, a no-op on backends
    without a basis API).

    Neither ingredient can change a non-degraded answer on the default
    HiGHS route — scipy's MILP takes no warm start, the PM-seeded
    certificates compare the PM point only, and the basis hint at most
    changes which vertex path the LP walks, not its optimal value — so
    chained results stay bit-identical to independent solves.  The seeds
    *do* feed the B&B incumbent (``solver="bnb"``) and the no-incumbent
    timeout fallback, where a better feasible point is strictly better.
    """

    #: Last feasible solution produced along the chain.
    neighbor: RecoverySolution | None = None
    #: Opaque LP-relaxation basis from the previous scenario, if any.
    basis: object | None = None
    #: Bookkeeping counters (chain seeds embedded, certificates, ...).
    stats: dict[str, int] = field(default_factory=dict)

    def advance(self, solution: RecoverySolution | None) -> None:
        """Record ``solution`` as the next scenario's neighbor seed."""
        if solution is not None and solution.feasible:
            self.neighbor = solution

    def bump(self, key: str) -> None:
        """Increment the ``key`` bookkeeping counter in :attr:`stats`."""
        self.stats[key] = self.stats.get(key, 0) + 1


def extract_solution(
    instance: FMSSMInstance,
    handles: FMSSMVariables,
    result: SolveResult,
    algorithm: str = "optimal",
) -> RecoverySolution:
    """Convert a solver incumbent into a :class:`RecoverySolution`.

    Pairs are activated from the ``w`` variables so that capacity/delay
    accounting matches the solver's own; the switch mapping comes from
    ``x``.  A ``y = 1`` with no mapped controller stays inactive, exactly
    as in the formulation.
    """
    if not result.is_feasible:
        raise SolverError(f"cannot extract from status {result.status.value}")
    mapping = {
        switch: controller
        for (switch, controller), var in handles.x.items()
        if result.values.get(var.name, 0.0) > _BINARY_THRESHOLD
    }
    sdn_pairs = {
        (switch, flow_id)
        for (switch, controller, flow_id), var in handles.w.items()
        if result.values.get(var.name, 0.0) > _BINARY_THRESHOLD
    }
    return RecoverySolution(
        algorithm=algorithm,
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        solve_time_s=result.wall_time_s,
        feasible=True,
        meta={
            "status": result.status.value,
            "objective": result.objective,
            "solver": result.solver,
            "gap": result.gap,
        },
    )


def _canonical_objective(instance: FMSSMInstance, solution: RecoverySolution) -> float:
    """``r + λ · obj2`` of ``solution``, exactly as the evaluator computes it.

    Both integer terms are recomputed from the extracted pairs, so two
    solutions with the same (least, total) programmability produce the
    *same float* regardless of which solver or compile route found them.
    """
    programmability: dict[object, int] = {f: 0 for f in instance.flows}
    for switch, flow_id in solution.active_pairs():
        programmability[flow_id] += instance.pbar[(switch, flow_id)]
    recoverable = instance.recoverable_flows
    least = min((programmability[f] for f in recoverable), default=0)
    return least + instance.lam * sum(programmability.values())


def _certificate_tolerance(instance: FMSSMInstance) -> float | None:
    """Half the objective grid spacing, or ``None`` when no safe gap exists.

    Feasible objectives are ``a + λ·b`` with integers ``a ∈ [0, r_ub]``
    and ``b ∈ [0, B]`` (``B`` = total max programmability).  When
    ``λ·B < 1`` two distinct values differ by at least
    ``min(λ, 1 − λ·B)`` (either ``a`` agrees and ``λ|Δb| ≥ λ``, or
    ``|Δa| ≥ 1`` dominates ``λ|Δb| ≤ λ·B``).  A heuristic within half
    that spacing of the LP dual bound is therefore *exactly* optimal.
    Returns ``None`` when the spacing is not positive or sits below the
    LP noise floor — the certificate is skipped then.
    """
    lam = float(instance.lam)
    if lam == 0.0:
        return 0.5  # objective is the integer r alone
    spacing = min(lam, 1.0 - lam * instance.total_max_programmability())
    if spacing <= 2.0 * _LP_NOISE_FLOOR:
        return None
    return 0.5 * spacing


def _combinatorial_bound(instance: FMSSMInstance) -> float:
    """A dual bound on P′ from pure combinatorics — no LP solve.

    Relax the LP relaxation further: keep only ``r ≤ r_ub`` and, with
    ``z_k := Σ_c w_kc``, the implications ``z_k ≤ 1`` (Eq. 2 mapping
    rows through the Eq. 9 McCormick ``w ≤ x``) and ``Σ_k z_k ≤ total
    spare`` (Eq. 12 capacity rows summed over controllers).  Maximizing
    ``r + λ Σ p̄_k z_k`` under those alone is a fractional knapsack with
    unit weights: fill the total spare capacity with the largest ``p̄``
    values.  Every LP-feasible point satisfies the relaxed system, so
    this bound is never below the LP-relaxation objective — a PM seed
    that certifies against it would also certify against the LP, and
    the LP solve can be skipped with the *same* returned point.
    """
    recoverable = instance.recoverable_flows
    r_ub = float(
        min((instance.max_programmability(f) for f in recoverable), default=0)
    )
    capacity = instance.total_spare
    if capacity <= 0 or not instance.pbar:
        return r_ub
    values = sorted(instance.pbar.values(), reverse=True)
    bonus = float(sum(values[: min(len(values), capacity)]))
    return r_ub + instance.lam * bonus


def _infeasible(meta: dict[str, object], elapsed: float) -> RecoverySolution:
    return RecoverySolution(
        algorithm="optimal", feasible=False, solve_time_s=elapsed, meta=meta
    )


def _timeout_disposition(
    rung: str,
    elapsed: float,
    raise_on_timeout: bool,
    meta: dict[str, object],
) -> RecoverySolution:
    """Handle a no-incumbent timeout: raise for ladders, warn otherwise."""
    if raise_on_timeout:
        raise RungTimeoutError(
            f"{rung} route timed out after {elapsed:.1f}s with no incumbent",
            elapsed_s=elapsed,
            rung=rung,
        )
    warnings.warn(
        DegradedResultWarning(
            f"optimal ({rung} route) timed out after {elapsed:.1f}s with no "
            f"incumbent; reporting an infeasible result"
        ),
        stacklevel=3,
    )
    return _infeasible(meta, elapsed)


def _solve_optimal_sparse(
    instance: FMSSMInstance,
    solver: str,
    time_limit_s: float | None,
    require_full_recovery: bool,
    enforce_delay: bool,
    warm_start: str | None,
    compiler: object,
    raise_on_timeout: bool,
    warm_chain: WarmChain | None = None,
) -> RecoverySolution:
    # Imported lazily: repro.perf pulls in the sweep machinery, which
    # imports this module back.
    from repro.perf.compile import compile_fmssm

    start = time.perf_counter()
    compiled = compile_fmssm(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
        compiler=compiler,
    )

    seed_x = None
    if warm_start == "pm":
        pm = solve_pm(instance, enforce_delay=enforce_delay)
        seed_x = compiled.embed_solution(pm)

    # Extra seed from the chain neighbor (incremental sweeps).  Only the
    # B&B incumbent and the timeout fallback consume it — it never feeds
    # the certificates, so default-route answers stay bit-identical to
    # independent solves.
    chain_x = None
    if warm_chain is not None and warm_chain.neighbor is not None:
        from repro.perf.incremental import repair_solution

        repaired = repair_solution(
            instance, warm_chain.neighbor, enforce_delay=enforce_delay
        )
        if repaired is not None:
            chain_x = compiled.embed_solution(repaired)
            if chain_x is not None:
                warm_chain.bump("chain_seeds")

    certificate = False
    result: SolveResult | None = None
    if seed_x is not None:
        cert_tol = _certificate_tolerance(instance)
        seed_obj = compiled.objective_value(seed_x)
        if cert_tol is not None and seed_obj >= _combinatorial_bound(instance) - cert_tol:
            # The combinatorial bound dominates the LP bound, so the LP
            # certificate would fire too — skip the LP solve entirely
            # and return the same PM point it would return.
            certificate = True
            if warm_chain is not None:
                warm_chain.bump("precertificates")
            result = SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=seed_obj,
                x=seed_x,
                solver="precert",
                wall_time_s=0.0,
                gap=0.0,
            )
        else:
            relaxation = solve_form_relaxation(
                compiled.form,
                basis=None if warm_chain is None else warm_chain.basis,
            )
            if warm_chain is not None:
                warm_chain.basis = relaxation.basis
            if relaxation.status is SolveStatus.INFEASIBLE:
                # The LP relaxing integrality is already infeasible, so the
                # MILP is too (cannot happen with a validated seed except
                # through numerical tolerance; trust the LP like B&B does).
                return _infeasible(
                    {"status": "infeasible", "solver": relaxation.solver,
                     "compile": "sparse"},
                    time.perf_counter() - start,
                )
            if (
                relaxation.status is SolveStatus.OPTIMAL
                and cert_tol is not None
                and seed_obj >= relaxation.objective - cert_tol
            ):
                # PM reaches the dual bound within less than the objective
                # grid spacing: provably optimal, skip the MILP.
                certificate = True
                result = SolveResult(
                    status=SolveStatus.OPTIMAL,
                    objective=seed_obj,
                    x=seed_x,
                    solver=relaxation.solver,
                    wall_time_s=relaxation.wall_time_s,
                    gap=0.0,
                )

    if result is None:
        best_seed = seed_x
        if chain_x is not None and (
            best_seed is None
            or compiled.objective_value(chain_x)
            > compiled.objective_value(best_seed)
        ):
            best_seed = chain_x
        if solver == "bnb":
            result = solve_form_with_bnb(
                compiled.form, time_limit_s=time_limit_s, warm_start=best_seed
            )
        else:
            result = solve_form_with_highs(compiled.form, time_limit_s=time_limit_s)
            if not result.is_feasible and best_seed is not None and (
                result.status is SolveStatus.TIMEOUT
            ):
                # Feasibility fallback: HiGHS ran out of time with no
                # incumbent, but the warm-start seed is a proven
                # feasible point.
                warnings.warn(
                    DegradedResultWarning(
                        f"optimal (sparse route) timed out after "
                        f"{result.wall_time_s:.1f}s with no incumbent; falling "
                        f"back to the warm-start point"
                    ),
                    stacklevel=3,
                )
                result = SolveResult(
                    status=SolveStatus.FEASIBLE,
                    objective=compiled.objective_value(best_seed),
                    x=best_seed,
                    solver="pm-fallback",
                    wall_time_s=result.wall_time_s,
                )

    elapsed = time.perf_counter() - start
    if not result.is_feasible or result.x is None:
        meta = {"status": result.status.value, "solver": result.solver,
                "compile": "sparse"}
        if result.status is SolveStatus.TIMEOUT:
            return _timeout_disposition("sparse", elapsed, raise_on_timeout, meta)
        return _infeasible(meta, elapsed)

    mapping, sdn_pairs = compiled.extract(result.x)
    solution = RecoverySolution(
        algorithm="optimal",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        solve_time_s=elapsed,
        feasible=True,
        meta={
            "status": result.status.value,
            "solver": result.solver,
            "gap": result.gap,
            "compile": "sparse",
            "certificate": certificate,
            "solver_objective": result.objective,
        },
    )
    solution.meta["objective"] = _canonical_objective(instance, solution)
    if result.solver == "pm-fallback":
        solution.meta["degraded"] = True
        solution.meta["fallback_rung"] = "pm-fallback"
        solution.meta["timeout_elapsed_s"] = elapsed
    return solution


def _validated(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool,
    require_full_recovery: bool,
) -> RecoverySolution:
    """Run the independent validator on a solver route's output.

    Every feasible answer any route returns is checked against the
    instance's constraints (Eqs. 2-6 / 12-14); a violation raises
    :class:`~repro.exceptions.ValidationError` — "the solver said so" is
    not enough.  The check is O(pairs), noise next to the MILP solve.
    """
    if solution.feasible:
        from repro.resilience.validate import check_solution

        # The PM fallback point is feasible but need not certify r >= 1.
        full = require_full_recovery and solution.meta.get("solver") != "pm-fallback"
        check_solution(
            instance,
            solution,
            enforce_delay=enforce_delay,
            require_full_recovery=full,
        )
    return solution


def solve_optimal(
    instance: FMSSMInstance,
    solver: str = "highs",
    time_limit_s: float | None = 600.0,
    require_full_recovery: bool = True,
    enforce_delay: bool = True,
    compile: str = "sparse",
    warm_start: str | None = "pm",
    compiler: object = None,
    raise_on_timeout: bool = False,
    validate: bool = True,
    warm_chain: WarmChain | None = None,
    lp_batch: int | None = None,
) -> RecoverySolution:
    """Solve P′ to optimality and return the recovery solution.

    Returns an *infeasible* :class:`RecoverySolution` (empty, with
    ``feasible=False``) when the problem admits no solution under the
    full-recovery requirement or the solver times out without an
    incumbent — the cases the paper reports as "Optimal has no result".

    Parameters
    ----------
    solver:
        ``"highs"`` (default) or ``"bnb"``.
    compile:
        ``"sparse"`` routes through :mod:`repro.perf.compile` (fast
        path); ``"model"`` through the original DSL (cross-validation).
    warm_start:
        ``"pm"`` seeds the solve with the PM heuristic (incumbent for
        B&B, certificate/fallback for HiGHS); ``None`` solves cold.
    compiler:
        Optional :class:`~repro.perf.compile.FMSSMCompiler` to reuse
        structural caches across scenarios (sparse route only).
    raise_on_timeout:
        When True, a no-incumbent timeout raises
        :class:`~repro.exceptions.RungTimeoutError` (carrying the rung
        and elapsed time) instead of returning an infeasible result —
        this is how the degradation ladder detects a dead rung.  The
        default keeps the historical return-infeasible behaviour but
        emits a :class:`~repro.exceptions.DegradedResultWarning`.
    validate:
        Run the independent validator
        (:mod:`repro.resilience.validate`) on every feasible answer;
        a violated constraint raises
        :class:`~repro.exceptions.ValidationError`.
    warm_chain:
        Optional :class:`WarmChain` threading cross-scenario warm-start
        state through an incremental sweep (sparse route only; ignored
        by the model route).  Never changes non-degraded answers — see
        the :class:`WarmChain` docstring.
    lp_batch:
        Any value >= 1 routes the solve through
        :func:`repro.perf.batch.solve_optimal_batch` (as a batch of
        one) — same answer bit for bit, with ``meta["batch"]``
        provenance added.  Sweeps pass ``lp_batch`` >= 2 to
        :func:`repro.perf.sweep.parallel_sweep` instead, which groups
        same-shaped scenarios into real multi-block batches.  Only the
        sparse route with the PM warm start batches; other
        configurations ignore the knob.
    """
    chaos.check("optimal.solve")
    if (
        lp_batch is not None
        and lp_batch >= 1
        and compile == "sparse"
        and warm_start == "pm"
    ):
        from repro.perf.batch import solve_optimal_batch

        return solve_optimal_batch(
            [instance],
            solver=solver,
            time_limit_s=time_limit_s,
            require_full_recovery=require_full_recovery,
            enforce_delay=enforce_delay,
            compiler=compiler,
            raise_on_timeout=raise_on_timeout,
            validate=validate,
            warm_chain=warm_chain,
        )[0]
    if compile == "sparse":
        solution = _solve_optimal_sparse(
            instance,
            solver=solver,
            time_limit_s=time_limit_s,
            require_full_recovery=require_full_recovery,
            enforce_delay=enforce_delay,
            warm_start=warm_start,
            compiler=compiler,
            raise_on_timeout=raise_on_timeout,
            warm_chain=warm_chain,
        )
        if validate:
            _validated(instance, solution, enforce_delay, require_full_recovery)
        if warm_chain is not None:
            warm_chain.advance(solution)
        return solution
    if compile != "model":
        raise ValueError(f"unknown compile route {compile!r}")

    start = time.perf_counter()
    model, handles = build_fmssm_model(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
    )
    result = solve(model, solver=solver, time_limit_s=time_limit_s)
    elapsed = time.perf_counter() - start

    if not result.is_feasible:
        meta = {"status": result.status.value, "solver": result.solver,
                "compile": "model"}
        if result.status is SolveStatus.TIMEOUT:
            return _timeout_disposition("model", elapsed, raise_on_timeout, meta)
        return _infeasible(meta, elapsed)
    solution = extract_solution(instance, handles, result)
    solution.solve_time_s = elapsed
    solution.meta["compile"] = "model"
    solution.meta["solver_objective"] = result.objective
    solution.meta["objective"] = _canonical_objective(instance, solution)
    if validate:
        _validated(instance, solution, enforce_delay, require_full_recovery)
    return solution
