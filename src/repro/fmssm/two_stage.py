"""The two-stage formulation of FMSSM (the paper's first option).

Section IV-D offers two ways to combine the objectives: a two-stage
solve — maximize the least programmability ``r`` first, then maximize
total programmability subject to the optimal ``r`` — or the single
weighted objective ``r + lambda * total`` the paper adopts, citing [17]
for the claim that a properly chosen weight makes both equivalent.

This module implements the two-stage option, both as a user-facing
alternative (it needs no weight at all) and as the executable check of
that equivalence claim (see ``tests/test_fmssm_two_stage.py`` and the
lambda ablation).
"""

from __future__ import annotations

import time

from repro.fmssm.formulation import build_fmssm_model
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import extract_solution
from repro.fmssm.solution import RecoverySolution
from repro.lp import LinExpr, solve

__all__ = ["solve_two_stage"]


def solve_two_stage(
    instance: FMSSMInstance,
    solver: str = "highs",
    time_limit_s: float | None = 600.0,
    require_full_recovery: bool = True,
    enforce_delay: bool = True,
) -> RecoverySolution:
    """Solve FMSSM lexicographically: max ``r`` first, then max total.

    Returns an infeasible :class:`RecoverySolution` when stage 1 already
    has no solution (same condition as the weighted Optimal).
    """
    start = time.perf_counter()

    # ----- stage 1: maximize the least programmability ----------------
    model, handles = build_fmssm_model(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
    )
    assert handles.r is not None
    model.set_objective(LinExpr.from_term(handles.r), sense="max")
    stage1 = solve(model, solver=solver, time_limit_s=time_limit_s)
    if not stage1.is_feasible:
        return RecoverySolution(
            algorithm="two-stage",
            feasible=False,
            solve_time_s=time.perf_counter() - start,
            meta={"stage": 1, "status": stage1.status.value},
        )
    best_r = stage1.value("r")

    # ----- stage 2: maximize total programmability at r >= r* ----------
    model2, handles2 = build_fmssm_model(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
    )
    assert handles2.r is not None
    # Integer programmabilities make r* integral up to solver tolerance;
    # round to avoid excluding the optimum by an epsilon.
    model2.add_constraint(
        LinExpr.from_term(handles2.r) >= round(best_r), name="stage1-r"
    )
    total = LinExpr.total(
        (float(instance.pbar[(switch, flow_id)]), w_var)
        for (switch, _controller, flow_id), w_var in handles2.w.items()
    )
    model2.set_objective(total, sense="max")
    stage2 = solve(model2, solver=solver, time_limit_s=time_limit_s)
    if not stage2.is_feasible:  # pragma: no cover - stage 1 point remains feasible
        return RecoverySolution(
            algorithm="two-stage",
            feasible=False,
            solve_time_s=time.perf_counter() - start,
            meta={"stage": 2, "status": stage2.status.value},
        )
    solution = extract_solution(instance, handles2, stage2, algorithm="two-stage")
    solution.solve_time_s = time.perf_counter() - start
    solution.meta["stage1_r"] = round(best_r)
    return solution
