"""Feasibility verification and metric evaluation of recovery solutions.

Every algorithm's output is pushed through the same evaluator so the
reported metrics (least/total programmability, recovery percentages,
per-flow communication overhead) are computed identically — exactly the
quantities plotted in Figs. 4–6 of the paper.

Both the verifier and the evaluator run on the instance's cached
:class:`~repro.perf.kernels.InstanceArrays` view: the served pairs are
resolved to dense pair indices once (``_active_view``) and every
aggregate — per-flow programmability, per-controller load, total delay —
is one ``bincount``/gather instead of a per-pair dict walk.  The one
deliberately sequential piece is the delay total, accumulated via
``cumsum`` so its float rounding history matches the historical
left-to-right Python sum bit for bit.  :func:`evaluate_batch` amortizes
the per-instance setup across many solutions of the same scenario (the
sweep's shape: four algorithms per instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SolutionError
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, FlowId, Milliseconds, NodeId

__all__ = [
    "RecoveryEvaluation",
    "evaluate_solution",
    "evaluate_batch",
    "verify_solution",
]

_DELAY_TOL = 1e-6


@dataclass
class RecoveryEvaluation:
    """All metrics of one solution on one instance.

    ``per_flow_overhead_ms`` is the paper's Fig. 4(d)/5(f)/6(f) metric:
    total switch-controller propagation delay of served SDN pairs divided
    by the number of recovered flows, plus any per-request middle-layer
    processing charge (PG's FlowVisor).
    """

    algorithm: str
    feasible: bool
    #: pro^l per offline flow (0 for unrecovered flows).
    programmability: dict[FlowId, int] = field(default_factory=dict)
    #: r — least programmability over *recoverable* offline flows.
    least_programmability: int = 0
    #: obj2 — total programmability over all offline flows.
    total_programmability: int = 0
    #: Flows with pro > 0.
    recovered_flows: int = 0
    #: Offline flows that some algorithm could recover.
    recoverable_flows: int = 0
    #: All offline flows.
    offline_flows: int = 0
    #: Switches hosting at least one served SDN pair.
    recovered_switches: int = 0
    offline_switches: int = 0
    #: Control resource consumed per controller.
    controller_load: dict[ControllerId, int] = field(default_factory=dict)
    #: Total propagation delay of served SDN pairs (ms).
    total_delay_ms: Milliseconds = 0.0
    #: Ideal recovery delay G of the instance (ms).
    ideal_delay_ms: Milliseconds = 0.0
    #: Mean communication overhead per recovered flow (ms).
    per_flow_overhead_ms: Milliseconds = 0.0
    #: Combined objective r + lambda * obj2.
    objective: float = 0.0
    solve_time_s: float = 0.0

    @property
    def recovery_fraction(self) -> float:
        """Recovered / recoverable flows (the paper's Fig. 5(c), 6(c))."""
        if self.recoverable_flows == 0:
            return 1.0
        return self.recovered_flows / self.recoverable_flows

    @property
    def switch_recovery_fraction(self) -> float:
        """Recovered / offline switches (the paper's Fig. 5(d), 6(d))."""
        if self.offline_switches == 0:
            return 1.0
        return self.recovered_switches / self.offline_switches

    def programmability_values(self) -> list[int]:
        """pro^l of every *recoverable* offline flow (for distributions).

        Unrecoverable flows are excluded — no algorithm can lift them off
        zero, so including them would flatten every distribution equally.
        """
        return [
            self.programmability[f]
            for f in sorted(self.programmability)
            if f in self._recoverable_set
        ]

    _recoverable_set: frozenset[FlowId] = frozenset()


def _recoverable_set(instance: FMSSMInstance) -> frozenset[FlowId]:
    """The instance's recoverable flows as a cached frozenset."""
    cached = instance.__dict__.get("_recoverable_set")
    if cached is None:
        cached = frozenset(instance.recoverable_flows)
        instance.__dict__["_recoverable_set"] = cached
    return cached


def _verify_sets(instance: FMSSMInstance) -> tuple[set, set]:
    """The instance's (controller, switch) membership sets, cached.

    The verifier consults them for every solution; building them once
    per instance amortizes the setup across a batch (and across repeat
    evaluations of the same scenario).
    """
    cached = instance.__dict__.get("_verify_sets")
    if cached is None:
        cached = (set(instance.controllers), set(instance.switches))
        instance.__dict__["_verify_sets"] = cached
    return cached


#: Resolved served pairs of one solution: ``(arrays, served, ctrl)``
#: where ``served`` holds ascending pair indices of SDN pairs actually
#: served by a controller and ``ctrl`` their controller positions.
_ActiveView = tuple  # (InstanceArrays, np.ndarray, np.ndarray)


def _active_view(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    resolved: "np.ndarray | None" = None,
) -> _ActiveView:
    """Resolve ``solution.active_pairs()`` to dense index arrays.

    ``served`` ascends, so downstream delay accumulation walks pairs in
    the same sorted order ``active_pairs()`` yields.  Mirrors its
    semantics exactly: a pair is served iff it has a per-pair controller
    or its switch is mapped, and per-pair assignments win.

    ``resolved`` lets the verifier hand over the already-resolved pair
    indices of ``solution.sdn_pairs`` (all non-negative — Eq. 1 checked
    them first), skipping the second resolution pass.  The unverified
    path keeps the historical KeyError semantics for non-programmable
    pairs.
    """
    from repro.perf.kernels import instance_arrays

    arrays = instance_arrays(instance)
    empty = np.empty(0, dtype=np.int64)
    if not solution.feasible or not solution.sdn_pairs:
        return arrays, empty, empty

    pair_index = arrays.pair_index
    sdn_pairs = solution.sdn_pairs
    if resolved is not None:
        served = resolved.copy()
    else:
        served = np.fromiter(
            (pair_index.get(pair, -1) for pair in sdn_pairs),
            dtype=np.int64,
            count=len(sdn_pairs),
        )
        if served.min() < 0:
            # Non-programmable SDN pairs: an error only when served (the
            # historical dict walk indexed instance.pbar on active pairs).
            for pair in sdn_pairs:
                if pair not in pair_index and (
                    pair in solution.pair_controller or pair[0] in solution.mapping
                ):
                    raise KeyError(pair)
            served = served[served >= 0]
    served.sort()

    ctrl_of = np.full(len(arrays.switches), -1, dtype=np.int64)
    switch_pos = arrays.switch_pos
    controller_pos = arrays.controller_pos
    for switch, controller in solution.mapping.items():
        pos = switch_pos.get(switch)
        if pos is None:
            continue  # no programmable pair can reference this switch
        # -2 marks "mapped to an unknown controller": an error only if a
        # served pair actually lands on it (resolved below).
        ctrl_of[pos] = controller_pos.get(controller, -2)
    ctrl = ctrl_of[arrays.pair_switch[served]]

    overrides = solution.pair_controller
    if overrides:
        keys = np.fromiter(
            (pair_index.get(pair, -1) for pair in overrides),
            dtype=np.int64,
            count=len(overrides),
        )
        values = np.fromiter(
            (controller_pos.get(c, -2) for c in overrides.values()),
            dtype=np.int64,
            count=len(overrides),
        )
        keep = keys >= 0
        keys, values = keys[keep], values[keep]
        locs = np.searchsorted(served, keys)
        hit = locs < served.size
        hit[hit] = served[locs[hit]] == keys[hit]
        ctrl[locs[hit]] = values[hit]

    if served.size and ctrl.min() == -2:
        for switch, flow_id in solution.active_pairs():
            controller = solution.controller_for_pair(switch, flow_id)
            if controller not in controller_pos:
                raise KeyError(controller)

    mask = ctrl >= 0
    return arrays, served[mask], ctrl[mask]


def verify_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool = True,
) -> None:
    """Raise :class:`SolutionError` if ``solution`` violates P′ constraints.

    Checks: mapping targets are active controllers (Eq. 2 is structural —
    the dict maps each switch at most once); SDN pairs are programmable
    pairs of the instance (Eq. 1); per-controller load within spare
    capacity (Eq. 12); total delay within G (Eq. 14, optional since
    flow-level baselines are allowed to trade it off).
    """
    _verified_view(instance, solution, enforce_delay)


def _verified_view(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool,
) -> _ActiveView | None:
    """Body of :func:`verify_solution`, returning the resolved view.

    The mapping checks stay plain dict/set loops (they must name the
    offending entity); the Eq. 1 membership check (SDN pairs are
    programmable pairs) is one batched ``pair_index`` resolution whose
    result feeds straight into :func:`_active_view`, so the pairs are
    resolved once per verified evaluation, not twice.  The membership
    sets themselves are cached per instance (:func:`_verify_sets`), so
    a batch of solutions shares all setup.
    """
    if not solution.feasible:
        if solution.mapping or solution.sdn_pairs:
            raise SolutionError("infeasible solutions must be empty")
        return None
    controller_set, switch_set = _verify_sets(instance)
    for switch, controller in solution.mapping.items():
        if switch not in switch_set:
            raise SolutionError(f"mapped switch {switch!r} is not offline")
        if controller not in controller_set:
            raise SolutionError(
                f"switch {switch!r} mapped to non-active controller {controller!r}"
            )
    resolved = None
    if solution.sdn_pairs:
        from repro.perf.kernels import instance_arrays

        pair_index = instance_arrays(instance).pair_index
        sdn_list = list(solution.sdn_pairs)
        resolved = np.fromiter(
            (pair_index.get(pair, -1) for pair in sdn_list),
            dtype=np.int64,
            count=len(sdn_list),
        )
        if resolved.min() < 0:
            pair = sdn_list[int(np.flatnonzero(resolved < 0)[0])]
            raise SolutionError(f"SDN pair {pair!r} is not a programmable pair")
    for pair, controller in solution.pair_controller.items():
        if controller not in controller_set:
            raise SolutionError(
                f"pair {pair!r} served by non-active controller {controller!r}"
            )

    view = _active_view(instance, solution, resolved=resolved)
    arrays, served, ctrl = view
    if solution.load_override is not None:
        load = {c: solution.load_override.get(c, 0) for c in instance.controllers}
        for controller, used in load.items():
            if used > instance.spare[controller]:
                raise SolutionError(
                    f"controller {controller!r} load {used} exceeds spare "
                    f"{instance.spare[controller]}"
                )
    else:
        counts = np.bincount(ctrl, minlength=len(arrays.controllers))
        if np.any(counts > arrays.spare):
            position = int(np.flatnonzero(counts > arrays.spare)[0])
            controller = arrays.controllers[position]
            raise SolutionError(
                f"controller {controller!r} load {int(counts[position])} exceeds "
                f"spare {instance.spare[controller]}"
            )

    if enforce_delay:
        total = _total_delay(arrays, served, ctrl)
        if total > instance.ideal_delay_ms * (1 + _DELAY_TOL) + _DELAY_TOL:
            raise SolutionError(
                f"total delay {total:.3f}ms exceeds G={instance.ideal_delay_ms:.3f}ms"
            )
    return view


def _total_delay(arrays, served: np.ndarray, ctrl: np.ndarray) -> float:
    """Delay total of the served pairs, summed left-to-right.

    ``cumsum`` adds strictly in index order, so the result is
    bit-identical to the historical sequential Python accumulation over
    sorted active pairs (``np.sum`` is not — it pairs terms).
    """
    if not served.size:
        return 0.0
    return float(arrays.delay[arrays.pair_switch[served], ctrl].cumsum()[-1])


def evaluate_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    verify: bool = True,
    enforce_delay: bool = False,
) -> RecoveryEvaluation:
    """Compute all paper metrics for ``solution`` on ``instance``."""
    if verify:
        view = _verified_view(instance, solution, enforce_delay)
    else:
        view = None
    return _evaluate(instance, solution, view)


def evaluate_batch(
    instance: FMSSMInstance,
    solutions: "list[RecoverySolution] | tuple[RecoverySolution, ...]",
    verify: bool = True,
    enforce_delay: bool = False,
) -> list[RecoveryEvaluation]:
    """Evaluate many solutions of the *same* instance.

    Semantically ``[evaluate_solution(instance, s, ...) for s in
    solutions]`` (asserted by the equivalence tests), but the
    per-instance setup — the array view, the recoverable frozenset —
    is shared across the batch.  This is the sweep's shape: every
    scenario evaluates all algorithms against one instance.
    """
    out = []
    for solution in solutions:
        view = _verified_view(instance, solution, enforce_delay) if verify else None
        out.append(_evaluate(instance, solution, view))
    return out


def _evaluate(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    view: _ActiveView | None,
) -> RecoveryEvaluation:
    """Metric extraction over a resolved active view (array reductions)."""
    if view is None:
        view = _active_view(instance, solution)
    arrays, served, ctrl = view
    recoverable = _recoverable_set(instance)
    n_flows = len(arrays.flow_ids)
    n_controllers = len(arrays.controllers)

    if served.size:
        switch_codes = arrays.pair_switch[served]
        pro = np.bincount(
            arrays.pair_flow[served],
            weights=arrays.pair_pbar[served],
            minlength=n_flows,
        ).astype(np.int64)
        load_vec = np.bincount(ctrl, minlength=n_controllers)
        total_delay = _total_delay(arrays, served, ctrl)
        recovered = int((pro > 0).sum())
        recovered_switches = int(np.unique(switch_codes).size)
    else:
        pro = np.zeros(n_flows, dtype=np.int64)
        load_vec = np.zeros(n_controllers, dtype=np.int64)
        total_delay = 0.0
        recovered = 0
        recovered_switches = 0

    programmability = dict(zip(arrays.flow_ids, pro.tolist()))
    if solution.load_override is not None:
        load = {c: solution.load_override.get(c, 0) for c in instance.controllers}
    else:
        load = dict(zip(arrays.controllers, load_vec.tolist()))

    least = 0
    if recoverable and solution.feasible:
        least = int(pro[arrays.recoverable_pos].min())
    total_pro = int(pro.sum())
    per_flow = 0.0
    if recovered:
        per_flow = total_delay / recovered + solution.extra_overhead_ms

    evaluation = RecoveryEvaluation(
        algorithm=solution.algorithm,
        feasible=solution.feasible,
        programmability=programmability,
        least_programmability=least,
        total_programmability=total_pro,
        recovered_flows=recovered,
        recoverable_flows=len(recoverable),
        offline_flows=instance.n_flows,
        recovered_switches=recovered_switches if solution.feasible else 0,
        offline_switches=instance.n_switches,
        controller_load=load,
        total_delay_ms=total_delay,
        ideal_delay_ms=instance.ideal_delay_ms,
        per_flow_overhead_ms=per_flow,
        objective=least + instance.lam * total_pro if solution.feasible else 0.0,
        solve_time_s=solution.solve_time_s,
    )
    evaluation._recoverable_set = recoverable
    return evaluation
