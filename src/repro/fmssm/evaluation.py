"""Feasibility verification and metric evaluation of recovery solutions.

Every algorithm's output is pushed through the same evaluator so the
reported metrics (least/total programmability, recovery percentages,
per-flow communication overhead) are computed identically — exactly the
quantities plotted in Figs. 4–6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SolutionError
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, FlowId, Milliseconds, NodeId

__all__ = ["RecoveryEvaluation", "evaluate_solution", "verify_solution"]

_DELAY_TOL = 1e-6


@dataclass
class RecoveryEvaluation:
    """All metrics of one solution on one instance.

    ``per_flow_overhead_ms`` is the paper's Fig. 4(d)/5(f)/6(f) metric:
    total switch-controller propagation delay of served SDN pairs divided
    by the number of recovered flows, plus any per-request middle-layer
    processing charge (PG's FlowVisor).
    """

    algorithm: str
    feasible: bool
    #: pro^l per offline flow (0 for unrecovered flows).
    programmability: dict[FlowId, int] = field(default_factory=dict)
    #: r — least programmability over *recoverable* offline flows.
    least_programmability: int = 0
    #: obj2 — total programmability over all offline flows.
    total_programmability: int = 0
    #: Flows with pro > 0.
    recovered_flows: int = 0
    #: Offline flows that some algorithm could recover.
    recoverable_flows: int = 0
    #: All offline flows.
    offline_flows: int = 0
    #: Switches hosting at least one served SDN pair.
    recovered_switches: int = 0
    offline_switches: int = 0
    #: Control resource consumed per controller.
    controller_load: dict[ControllerId, int] = field(default_factory=dict)
    #: Total propagation delay of served SDN pairs (ms).
    total_delay_ms: Milliseconds = 0.0
    #: Ideal recovery delay G of the instance (ms).
    ideal_delay_ms: Milliseconds = 0.0
    #: Mean communication overhead per recovered flow (ms).
    per_flow_overhead_ms: Milliseconds = 0.0
    #: Combined objective r + lambda * obj2.
    objective: float = 0.0
    solve_time_s: float = 0.0

    @property
    def recovery_fraction(self) -> float:
        """Recovered / recoverable flows (the paper's Fig. 5(c), 6(c))."""
        if self.recoverable_flows == 0:
            return 1.0
        return self.recovered_flows / self.recoverable_flows

    @property
    def switch_recovery_fraction(self) -> float:
        """Recovered / offline switches (the paper's Fig. 5(d), 6(d))."""
        if self.offline_switches == 0:
            return 1.0
        return self.recovered_switches / self.offline_switches

    def programmability_values(self) -> list[int]:
        """pro^l of every *recoverable* offline flow (for distributions).

        Unrecoverable flows are excluded — no algorithm can lift them off
        zero, so including them would flatten every distribution equally.
        """
        return [
            self.programmability[f]
            for f in sorted(self.programmability)
            if f in self._recoverable_set
        ]

    _recoverable_set: frozenset[FlowId] = frozenset()


def verify_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool = True,
) -> None:
    """Raise :class:`SolutionError` if ``solution`` violates P′ constraints.

    Checks: mapping targets are active controllers (Eq. 2 is structural —
    the dict maps each switch at most once); SDN pairs are programmable
    pairs of the instance (Eq. 1); per-controller load within spare
    capacity (Eq. 12); total delay within G (Eq. 14, optional since
    flow-level baselines are allowed to trade it off).
    """
    if not solution.feasible:
        if solution.mapping or solution.sdn_pairs:
            raise SolutionError("infeasible solutions must be empty")
        return
    controller_set = set(instance.controllers)
    switch_set = set(instance.switches)
    for switch, controller in solution.mapping.items():
        if switch not in switch_set:
            raise SolutionError(f"mapped switch {switch!r} is not offline")
        if controller not in controller_set:
            raise SolutionError(
                f"switch {switch!r} mapped to non-active controller {controller!r}"
            )
    for pair in solution.sdn_pairs:
        if pair not in instance.pbar:
            raise SolutionError(f"SDN pair {pair!r} is not a programmable pair")
    for pair, controller in solution.pair_controller.items():
        if controller not in controller_set:
            raise SolutionError(
                f"pair {pair!r} served by non-active controller {controller!r}"
            )

    if solution.load_override is not None:
        load = {c: solution.load_override.get(c, 0) for c in instance.controllers}
    else:
        load = {c: 0 for c in instance.controllers}
        for switch, flow_id in solution.active_pairs():
            load[solution.controller_for_pair(switch, flow_id)] += 1
    for controller, used in load.items():
        if used > instance.spare[controller]:
            raise SolutionError(
                f"controller {controller!r} load {used} exceeds spare "
                f"{instance.spare[controller]}"
            )

    if enforce_delay:
        total = sum(
            instance.delay[(switch, solution.controller_for_pair(switch, flow_id))]
            for switch, flow_id in solution.active_pairs()
        )
        if total > instance.ideal_delay_ms * (1 + _DELAY_TOL) + _DELAY_TOL:
            raise SolutionError(
                f"total delay {total:.3f}ms exceeds G={instance.ideal_delay_ms:.3f}ms"
            )


def evaluate_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    verify: bool = True,
    enforce_delay: bool = False,
) -> RecoveryEvaluation:
    """Compute all paper metrics for ``solution`` on ``instance``."""
    if verify:
        verify_solution(instance, solution, enforce_delay=enforce_delay)

    recoverable = frozenset(instance.recoverable_flows)
    programmability: dict[FlowId, int] = {f: 0 for f in instance.flows}
    load: dict[ControllerId, int] = {c: 0 for c in instance.controllers}
    total_delay = 0.0
    active_pairs = solution.active_pairs() if solution.feasible else ()
    for switch, flow_id in active_pairs:
        controller = solution.controller_for_pair(switch, flow_id)
        programmability[flow_id] += instance.pbar[(switch, flow_id)]
        load[controller] += 1
        total_delay += instance.delay[(switch, controller)]
    if solution.load_override is not None:
        load = {c: solution.load_override.get(c, 0) for c in instance.controllers}

    recovered = [f for f, pro in programmability.items() if pro > 0]
    least = (
        min(programmability[f] for f in recoverable) if recoverable and solution.feasible else 0
    )
    if not solution.feasible:
        least = 0
    total_pro = sum(programmability.values())
    per_flow = 0.0
    if recovered:
        per_flow = total_delay / len(recovered) + solution.extra_overhead_ms

    evaluation = RecoveryEvaluation(
        algorithm=solution.algorithm,
        feasible=solution.feasible,
        programmability=programmability,
        least_programmability=least,
        total_programmability=total_pro,
        recovered_flows=len(recovered),
        recoverable_flows=len(recoverable),
        offline_flows=instance.n_flows,
        recovered_switches=len(solution.recovered_switches()) if solution.feasible else 0,
        offline_switches=instance.n_switches,
        controller_load=load,
        total_delay_ms=total_delay,
        ideal_delay_ms=instance.ideal_delay_ms,
        per_flow_overhead_ms=per_flow,
        objective=least + instance.lam * total_pro if solution.feasible else 0.0,
        solve_time_s=solution.solve_time_s,
    )
    evaluation._recoverable_set = recoverable
    return evaluation
