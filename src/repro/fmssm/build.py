"""Assemble an :class:`~repro.fmssm.instance.FMSSMInstance` from a network.

This is the glue between the substrates (topology, flows, programmability
model, control plane, failure scenario) and the optimization/heuristic
layer.  Every recovery algorithm consumes the instance built here, so all
algorithms are compared on identical ground data.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.control.delay import DelayModel, ideal_recovery_delay
from repro.control.failures import FailureScenario
from repro.control.plane import ControlPlane
from repro.flows.flow import Flow
from repro.flows.paths import switch_flow_counts
from repro.fmssm.instance import FMSSMInstance
from repro.routing.programmability import ProgrammabilityModel
from repro.types import ControllerId, FlowId, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.coefficients import CoefficientTable

__all__ = ["build_instance", "default_lambda"]


def default_lambda(total_max_programmability: int) -> float:
    """A weight that keeps obj1 strictly prioritized over obj2.

    The paper combines ``obj = r + lambda * sum(pro)`` and picks the
    weight "following [17]" so the combined optimum matches the two-stage
    optimum.  Any ``lambda < 1 / max(obj2)`` works: raising ``r`` by one
    unit (its smallest step, since programmabilities are integers) then
    always beats any achievable obj2 gain.  We use half that bound.
    """
    return 0.5 / max(1, total_max_programmability)


def build_instance(
    plane: ControlPlane,
    flows: Iterable[Flow],
    programmability: ProgrammabilityModel | CoefficientTable,
    scenario: FailureScenario,
    delay_model: DelayModel | None = None,
    lam: float | None = None,
) -> FMSSMInstance:
    """Ground the FMSSM problem for one failure scenario.

    Parameters
    ----------
    plane:
        Control plane (topology, domains, capacities).
    flows:
        The full flow population; offline flows are selected here.
    programmability:
        Source of ``beta`` / ``p̄`` coefficients — either the lazy
        :class:`ProgrammabilityModel` or a materialized
        :class:`~repro.perf.coefficients.CoefficientTable` (sweeps reuse
        one table across all scenarios).
    scenario:
        Which controllers failed.
    delay_model:
        Switch-controller delay interpretation; defaults to the paper's
        geodesic model.
    lam:
        Objective weight; defaults to :func:`default_lambda` of the
        instance's obj2 upper bound.
    """
    scenario.validate(plane)
    topology = plane.topology
    delay_model = delay_model or DelayModel(topology, mode="geodesic")

    offline_switches = scenario.offline_switches(plane)
    offline_set = set(offline_switches)
    active = scenario.active_controllers(plane)
    sites = {c: plane.controller(c).site for c in active}

    all_flows = list(flows)
    offline_flows: dict[FlowId, Flow] = {}
    for flow in all_flows:
        if any(node in offline_set for node in flow.path):
            offline_flows[flow.flow_id] = flow

    # Spare capacity of active controllers given the *full* workload —
    # active controllers keep serving their own domains (the paper's
    # "without interrupting their normal operations").
    spare_all = plane.spare_capacity(all_flows)
    spare = {c: spare_all[c] for c in active}

    # gamma over offline switches, counting every flow in the switch
    # (Table III convention: destination included).
    gamma_all = switch_flow_counts(all_flows)
    gamma = {s: int(gamma_all.get(s, 0)) for s in offline_switches}

    # beta / p̄ for offline (switch, flow) pairs.
    pbar: dict[tuple[NodeId, FlowId], int] = {}
    for flow in offline_flows.values():
        for switch in flow.transit_switches:
            if switch not in offline_set:
                continue
            value = programmability.pbar(flow, switch)
            if value:
                pbar[(switch, flow.flow_id)] = value

    delay = delay_model.matrix(offline_switches, sites)
    nearest: dict[NodeId, ControllerId] = {
        s: delay_model.nearest_controller(s, sites) for s in offline_switches
    }
    ideal = ideal_recovery_delay(delay_model, offline_switches, sites, gamma)

    if lam is None:
        lam = default_lambda(sum(pbar.values()))

    return FMSSMInstance(
        switches=tuple(offline_switches),
        controllers=tuple(active),
        spare=spare,
        delay=delay,
        flows=offline_flows,
        pbar=pbar,
        gamma=gamma,
        ideal_delay_ms=ideal,
        lam=lam,
        nearest=nearest,
    )
