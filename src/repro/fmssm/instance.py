"""The FMSSM problem instance (Section IV of the paper).

An :class:`FMSSMInstance` is the fully ground data of one recovery
problem: the offline switches S, active controllers C with spare capacity
A, delays D, the offline flows with their ``beta``/``p̄`` coefficients,
per-switch flow counts ``gamma``, the ideal recovery delay ``G``, and the
objective weight ``lambda``.

Terminology used throughout the package:

offline flow
    A flow whose path traverses at least one offline switch.
programmable pair
    An (offline switch, offline flow) pair with ``beta == 1`` — putting
    the flow in SDN mode at that switch under a mapped controller yields
    ``p̄`` units of programmability.
recoverable flow
    An offline flow with at least one programmable pair.  Flows without
    any (e.g. their only offline switch is their destination, or it has a
    single path onward) cannot be recovered by *any* algorithm — the
    paper's ``r`` constraint is applied over recoverable flows only,
    otherwise ``r = 0`` degenerately for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

from repro.exceptions import ModelError
from repro.flows.flow import Flow
from repro.types import ControllerId, FlowId, Milliseconds, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["FMSSMInstance", "PairArrays"]


class PairArrays(NamedTuple):
    """Dense numpy views over an instance's programmable pairs.

    Built lazily by :meth:`FMSSMInstance.pair_arrays` and cached — the
    instance is immutable, so the arrays never change.  Consumers
    (PM's vectorized saturation pass, the incremental repair kernel)
    scan these instead of doing per-pair dict lookups.
    """

    #: Index into ``instance.switches`` of each pair, aligned with ``pairs``.
    switch_code: "np.ndarray"
    #: ``p̄`` of each pair, aligned with ``pairs`` (int64).
    pbar: "np.ndarray"
    #: Switch id → position in ``instance.switches``.
    switch_pos: dict[NodeId, int]
    #: Pair tuple → position in ``instance.pairs``.
    pair_index: dict[tuple[NodeId, FlowId], int]


@dataclass
class FMSSMInstance:
    """Ground data of one programmability-recovery problem.

    Attributes mirror the paper's notation (Table II).  All mappings are
    keyed by public ids (node ids, controller ids, flow ids) rather than
    dense indices, since N, M and L are WAN-scale small.

    Instances are treated as immutable once constructed: the derived
    views (``pairs_at``, ``pairs_of``, ``pairs``, ``recoverable_flows``,
    ``total_iterations``) are precomputed in ``__post_init__`` because
    the heuristics read them in hot loops.
    """

    #: Offline switches S, sorted.
    switches: tuple[NodeId, ...]
    #: Active controllers C, sorted.
    controllers: tuple[ControllerId, ...]
    #: Spare control resource A_j^rest per active controller.
    spare: dict[ControllerId, int]
    #: Propagation delay D_ij in ms per (offline switch, active controller).
    delay: dict[tuple[NodeId, ControllerId], Milliseconds]
    #: Offline flows, keyed by flow id.
    flows: dict[FlowId, Flow]
    #: p̄_i^l for every programmable pair (switch, flow id).
    pbar: dict[tuple[NodeId, FlowId], int]
    #: gamma_i — number of flows in each offline switch (Table III).
    gamma: dict[NodeId, int]
    #: Ideal recovery delay G in ms (Eq. 6).
    ideal_delay_ms: Milliseconds
    #: Objective weight lambda for obj2.
    lam: float
    #: Nearest active controller per offline switch (the alpha_ij = 1 one).
    nearest: dict[NodeId, ControllerId]

    # Derived indexes, built in __post_init__.
    pairs_at: dict[NodeId, tuple[FlowId, ...]] = field(init=False, repr=False)
    pairs_of: dict[FlowId, tuple[NodeId, ...]] = field(init=False, repr=False)
    _pairs: tuple[tuple[NodeId, FlowId], ...] = field(init=False, repr=False)
    _recoverable: tuple[FlowId, ...] = field(init=False, repr=False)
    _total_iterations: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        switch_set = set(self.switches)
        controller_set = set(self.controllers)
        if not switch_set:
            raise ModelError("instance has no offline switches")
        if not controller_set:
            raise ModelError("instance has no active controllers")
        for (switch, controller), value in self.delay.items():
            if switch not in switch_set or controller not in controller_set:
                raise ModelError(f"delay entry for unknown pair {(switch, controller)!r}")
            if value < 0:
                raise ModelError(f"negative delay for {(switch, controller)!r}: {value!r}")
        for switch in self.switches:
            for controller in self.controllers:
                if (switch, controller) not in self.delay:
                    raise ModelError(f"missing delay for {(switch, controller)!r}")
        for controller, value in self.spare.items():
            if controller not in controller_set:
                raise ModelError(f"spare entry for unknown controller {controller!r}")
            if value < 0:
                raise ModelError(f"negative spare for controller {controller!r}: {value!r}")
        for (switch, flow_id), value in self.pbar.items():
            if switch not in switch_set:
                raise ModelError(f"pbar entry for non-offline switch {switch!r}")
            if flow_id not in self.flows:
                raise ModelError(f"pbar entry for unknown flow {flow_id!r}")
            if value < 2:
                raise ModelError(
                    f"pbar must be >= 2 on programmable pairs, got {value!r} "
                    f"for {(switch, flow_id)!r}"
                )
        if self.lam < 0:
            raise ModelError(f"lambda must be >= 0: {self.lam!r}")

        pairs_at: dict[NodeId, list[FlowId]] = {s: [] for s in self.switches}
        pairs_of: dict[FlowId, list[NodeId]] = {f: [] for f in self.flows}
        self._pairs = tuple(sorted(self.pbar))
        for switch, flow_id in self._pairs:
            pairs_at[switch].append(flow_id)
            pairs_of[flow_id].append(switch)
        self.pairs_at = {s: tuple(v) for s, v in pairs_at.items()}
        self.pairs_of = {f: tuple(v) for f, v in pairs_of.items()}
        self._recoverable = tuple(
            sorted(f for f, switches in self.pairs_of.items() if switches)
        )
        self._total_iterations = (
            max(len(switches) for switches in self.pairs_of.values()) if self.pbar else 0
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_switches(self) -> int:
        """N — number of offline switches."""
        return len(self.switches)

    @property
    def n_controllers(self) -> int:
        """M — number of active controllers."""
        return len(self.controllers)

    @property
    def n_flows(self) -> int:
        """L — number of offline flows."""
        return len(self.flows)

    @property
    def pairs(self) -> tuple[tuple[NodeId, FlowId], ...]:
        """All programmable pairs, sorted (precomputed)."""
        return self._pairs

    @property
    def recoverable_flows(self) -> tuple[FlowId, ...]:
        """Offline flows with at least one programmable pair, sorted (precomputed)."""
        return self._recoverable

    @property
    def unrecoverable_flows(self) -> tuple[FlowId, ...]:
        """Offline flows no algorithm can recover, sorted."""
        return tuple(sorted(f for f, switches in self.pairs_of.items() if not switches))

    @property
    def total_spare(self) -> int:
        """Total spare control resource across active controllers."""
        return sum(self.spare.values())

    def max_programmability(self, flow_id: FlowId) -> int:
        """Upper bound on ``pro^l``: all programmable pairs in SDN mode."""
        return sum(self.pbar[(s, flow_id)] for s in self.pairs_of[flow_id])

    def total_max_programmability(self) -> int:
        """Upper bound on obj2: every programmable pair active."""
        return sum(self.pbar.values())

    def pair_arrays(self) -> PairArrays:
        """Dense array views over the programmable pairs (cached).

        The first call builds them in ``pairs`` order; subsequent calls
        return the same object.  Kept out of ``__post_init__`` so
        instances that never touch the vectorized kernels do not pay for
        the numpy import or the array build.
        """
        cached = self.__dict__.get("_pair_arrays")
        if cached is None:
            import numpy as np

            switch_pos = {s: i for i, s in enumerate(self.switches)}
            count = len(self._pairs)
            cached = PairArrays(
                switch_code=np.fromiter(
                    (switch_pos[s] for s, _ in self._pairs),
                    dtype=np.int64,
                    count=count,
                ),
                pbar=np.fromiter(
                    (self.pbar[pair] for pair in self._pairs),
                    dtype=np.int64,
                    count=count,
                ),
                switch_pos=switch_pos,
                pair_index={pair: k for k, pair in enumerate(self._pairs)},
            )
            self.__dict__["_pair_arrays"] = cached
        return cached

    @property
    def total_iterations(self) -> int:
        """The paper's TOTAL_ITERATIONS: max offline switches on any flow path.

        Counted over programmable pairs, since only those can raise a
        flow's programmability.  Precomputed in ``__post_init__`` — PM's
        phase-1 loop reads this every pick.
        """
        return self._total_iterations

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"FMSSM(N={self.n_switches}, M={self.n_controllers}, L={self.n_flows}, "
            f"pairs={len(self.pbar)}, recoverable={len(self.recoverable_flows)}, "
            f"spare={self.total_spare}, G={self.ideal_delay_ms:.2f}ms, "
            f"lambda={self.lam:.3g})"
        )
