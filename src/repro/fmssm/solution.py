"""Recovery solution representation.

A :class:`RecoverySolution` is what every algorithm (PM, Optimal,
RetroFlow, PG, naive) returns: the switch→controller mapping X, the set
of SDN-mode (switch, flow) pairs Y, and bookkeeping about how it was
produced.  For flow-level algorithms (PG) the per-pair controller can
differ from the switch mapping, so an optional per-pair assignment is
carried as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SolutionError
from repro.types import ControllerId, FlowId, Milliseconds, NodeId

__all__ = ["RecoverySolution"]


@dataclass
class RecoverySolution:
    """Output of a recovery algorithm.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm (e.g. ``"pm"``, ``"optimal"``).
    mapping:
        X — offline switch → active controller, for mapped switches only.
    sdn_pairs:
        Y — (switch, flow id) pairs configured in SDN mode.  Pairs not in
        Y run in legacy mode on the hybrid pipeline.
    pair_controller:
        Controller actually serving each SDN pair.  For switch-level
        algorithms this is implied by ``mapping`` and may be left empty;
        for flow-level algorithms (PG) each pair may use a different
        controller than the switch's.
    extra_overhead_ms:
        Additional per-request processing charged on top of propagation
        delay (PG's FlowVisor middle layer).
    load_override:
        Per-controller control-resource consumption when it differs from
        the number of served SDN pairs.  Switch-level algorithms
        (RetroFlow, naive remapping) pay the *whole-switch* cost
        ``gamma_i`` per recovered switch — the coarse granularity the
        paper criticizes — so they record it here; the evaluator then
        verifies capacity and reports loads against this accounting.
    solve_time_s:
        Wall-clock seconds the algorithm took.
    feasible:
        False when the algorithm could not produce a solution (the paper's
        Optimal lacks results in some three-failure cases); the mapping
        and pairs are then empty.
    meta:
        Free-form diagnostics (solver status, gap, iterations...).
    """

    algorithm: str
    mapping: dict[NodeId, ControllerId] = field(default_factory=dict)
    sdn_pairs: set[tuple[NodeId, FlowId]] = field(default_factory=set)
    pair_controller: dict[tuple[NodeId, FlowId], ControllerId] = field(default_factory=dict)
    extra_overhead_ms: Milliseconds = 0.0
    load_override: dict[ControllerId, int] | None = None
    solve_time_s: float = 0.0
    feasible: bool = True
    meta: dict[str, object] = field(default_factory=dict)

    def controller_for_pair(self, switch: NodeId, flow_id: FlowId) -> ControllerId:
        """Controller serving an SDN pair.

        Falls back to the switch's mapping when no per-pair assignment is
        recorded.  Raises :class:`SolutionError` if neither exists.
        """
        pair = (switch, flow_id)
        if pair in self.pair_controller:
            return self.pair_controller[pair]
        if switch in self.mapping:
            return self.mapping[switch]
        raise SolutionError(
            f"pair {pair!r} is in SDN mode but no controller serves it"
        )

    def active_pairs(self) -> tuple[tuple[NodeId, FlowId], ...]:
        """SDN pairs actually served by a controller, sorted.

        A pair in Y whose switch is unmapped (and with no per-pair
        controller) contributes nothing — the flow entry exists but no
        controller programs it; such pairs are excluded here.
        """
        active = []
        for pair in self.sdn_pairs:
            if pair in self.pair_controller or pair[0] in self.mapping:
                active.append(pair)
        return tuple(sorted(active))

    @property
    def n_mapped_switches(self) -> int:
        """Number of offline switches mapped to a controller."""
        return len(self.mapping)

    def recovered_switches(self) -> tuple[NodeId, ...]:
        """Switches hosting at least one served SDN pair, sorted."""
        return tuple(sorted({switch for switch, _ in self.active_pairs()}))

    def __repr__(self) -> str:
        return (
            f"RecoverySolution(algorithm={self.algorithm!r}, "
            f"mapped={len(self.mapping)}, sdn_pairs={len(self.sdn_pairs)}, "
            f"feasible={self.feasible})"
        )
