"""Build the linearized IP (problem P′, Section IV-E) from an instance.

Variables
---------
``x[i,j]``    binary — offline switch ``i`` mapped to controller ``j``.
``y[i,l]``    binary — flow ``l`` in SDN mode at switch ``i``; created only
              for programmable pairs (``beta = 1``), since Eq. (1) forces
              ``y = 0`` elsewhere and such pairs contribute nothing.
``w[i,j,l]``  binary — the McCormick linearization of ``x[i,j] * y[i,l]``
              (Eqs. 9–11).
``r``         continuous ≥ 0 — least programmability of recoverable flows.

Constraints
-----------
Eq. (2)   each switch maps to at most one controller;
Eq. (12)  controller spare-capacity budget over SDN pairs;
Eq. (13)  ``pro^l >= r`` for every *recoverable* flow (see
          :mod:`repro.fmssm.instance` for why unrecoverable flows are
          excluded);
Eq. (14)  total switch-controller delay bounded by the ideal delay G;
optional  ``r >= 1`` — the full-recovery requirement used by the paper's
          Optimal ("not interrupting active controllers' normal
          operations" while recovering everyone), which makes tight
          instances genuinely infeasible, as in Fig. 6.

Objective: ``max r + lambda * sum(pbar * w)``.
"""

from __future__ import annotations

from repro.fmssm.instance import FMSSMInstance
from repro.lp.model import LinExpr, Model, Var
from repro.types import ControllerId, FlowId, NodeId

__all__ = ["FMSSMVariables", "build_fmssm_model"]


class FMSSMVariables:
    """Handles to the model's variables, keyed by instance ids."""

    def __init__(self) -> None:
        self.x: dict[tuple[NodeId, ControllerId], Var] = {}
        self.y: dict[tuple[NodeId, FlowId], Var] = {}
        self.w: dict[tuple[NodeId, ControllerId, FlowId], Var] = {}
        self.r: Var | None = None


def build_fmssm_model(
    instance: FMSSMInstance,
    require_full_recovery: bool = False,
    enforce_delay: bool = True,
) -> tuple[Model, FMSSMVariables]:
    """Construct problem P′ for ``instance``.

    Parameters
    ----------
    instance:
        Ground problem data.
    require_full_recovery:
        Add ``r >= 1``, forcing every recoverable flow to be recovered.
    enforce_delay:
        Include Eq. (14); disable for the delay-constraint ablation.
    """
    model = Model(f"fmssm-N{instance.n_switches}-M{instance.n_controllers}")
    handles = FMSSMVariables()

    for switch in instance.switches:
        for controller in instance.controllers:
            handles.x[(switch, controller)] = model.add_var(
                f"x[{switch},{controller}]", binary=True
            )
    for switch, flow_id in instance.pairs:
        handles.y[(switch, flow_id)] = model.add_var(
            f"y[{switch},{flow_id}]", binary=True
        )
        for controller in instance.controllers:
            handles.w[(switch, controller, flow_id)] = model.add_var(
                f"w[{switch},{controller},{flow_id}]", binary=True
            )
    recoverable = instance.recoverable_flows
    if recoverable:
        # Valid tight upper bound: r cannot exceed the weakest flow's
        # achievable programmability (keeps the model bounded even when
        # Eq. 13 would otherwise leave r free).
        r_ub = float(min(instance.max_programmability(f) for f in recoverable))
        r_lb = 1.0 if require_full_recovery else 0.0
    else:
        # Nothing is recoverable: r is identically 0 and the full-recovery
        # requirement is vacuous.
        r_ub = 0.0
        r_lb = 0.0
    handles.r = model.add_var("r", lb=r_lb, ub=r_ub)

    # Eq. (2): each switch maps to at most one controller.
    for switch in instance.switches:
        expr = LinExpr.total(
            (1.0, handles.x[(switch, controller)]) for controller in instance.controllers
        )
        model.add_constraint(expr <= 1, name=f"map[{switch}]")

    # Eqs. (9)-(11): w = x * y (McCormick for binaries).
    for (switch, controller, flow_id), w_var in handles.w.items():
        x_var = handles.x[(switch, controller)]
        y_var = handles.y[(switch, flow_id)]
        model.add_constraint(
            LinExpr.from_term(w_var) - x_var <= 0, name=f"wx[{switch},{controller},{flow_id}]"
        )
        model.add_constraint(
            LinExpr.from_term(w_var) - y_var <= 0, name=f"wy[{switch},{controller},{flow_id}]"
        )
        model.add_constraint(
            LinExpr.from_term(x_var) + y_var - w_var <= 1,
            name=f"wxy[{switch},{controller},{flow_id}]",
        )

    # Eq. (12): controller capacity over SDN pairs (beta folded into the
    # variable set — only beta=1 pairs have w variables).  Vacuous when
    # the instance has no programmable pairs at all.
    if instance.pairs:
        for controller in instance.controllers:
            expr = LinExpr.total(
                (1.0, handles.w[(switch, controller, flow_id)])
                for switch, flow_id in instance.pairs
            )
            model.add_constraint(
                expr <= instance.spare[controller], name=f"cap[{controller}]"
            )

    # Eq. (13): pro^l >= r for recoverable flows.
    assert handles.r is not None
    for flow_id in instance.recoverable_flows:
        terms = [
            (float(instance.pbar[(switch, flow_id)]), handles.w[(switch, controller, flow_id)])
            for switch in instance.pairs_of[flow_id]
            for controller in instance.controllers
        ]
        expr = LinExpr.total(terms) - handles.r
        model.add_constraint(expr >= 0, name=f"pro[{flow_id}]")

    # Eq. (14): total propagation delay bounded by the ideal case G.
    if enforce_delay and handles.w:
        expr = LinExpr.total(
            (instance.delay[(switch, controller)], handles.w[(switch, controller, flow_id)])
            for switch, controller, flow_id in handles.w
        )
        model.add_constraint(expr <= instance.ideal_delay_ms, name="delay")

    # Objective: r + lambda * total programmability.
    total_terms = [
        (instance.lam * instance.pbar[(switch, flow_id)], w_var)
        for (switch, _controller, flow_id), w_var in handles.w.items()
    ]
    objective = LinExpr.from_term(handles.r) + LinExpr.total(total_terms)
    model.set_objective(objective, sense="max")

    return model, handles
