"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each function isolates one design
decision and quantifies its effect, using the same runner/metrics stack
as the main experiments.
"""

from __future__ import annotations

from typing import Any

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.experiments.scenarios import ExperimentContext, default_att_context
from repro.fmssm.build import build_instance
from repro.fmssm.evaluation import evaluate_batch, evaluate_solution
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import solve_optimal
from repro.pm.algorithm import solve_pm

__all__ = [
    "lambda_sweep",
    "counter_strategy_comparison",
    "phase2_ablation",
    "delay_constraint_ablation",
    "capacity_sweep",
]

#: The paper's flagship tight case: controllers 13 and 20 fail together.
DEFAULT_CASE: tuple[int, ...] = (13, 20)


def _with_lambda(instance: FMSSMInstance, lam: float) -> FMSSMInstance:
    """Copy an instance with a different objective weight."""
    return FMSSMInstance(
        switches=instance.switches,
        controllers=instance.controllers,
        spare=dict(instance.spare),
        delay=dict(instance.delay),
        flows=dict(instance.flows),
        pbar=dict(instance.pbar),
        gamma=dict(instance.gamma),
        ideal_delay_ms=instance.ideal_delay_ms,
        lam=lam,
        nearest=dict(instance.nearest),
    )


def lambda_sweep(
    context: ExperimentContext,
    failed: tuple[int, ...] = DEFAULT_CASE,
    multipliers: tuple[float, ...] = (0.0, 0.5, 1.0, 10.0, 1000.0),
    time_limit_s: float = 120.0,
) -> list[dict[str, Any]]:
    """How the objective weight lambda trades obj1 (r) against obj2.

    ``multipliers`` scale the library's safe default weight.  Below 1x
    the optimum of r is provably preserved; far above it, the solver may
    sacrifice the least programmability for raw total — demonstrating
    why the paper selects the weight "following [17]".
    """
    base = context.instance(FailureScenario(frozenset(failed)))
    rows = []
    for multiplier in multipliers:
        instance = _with_lambda(base, base.lam * multiplier)
        solution = solve_optimal(instance, time_limit_s=time_limit_s)
        evaluation = evaluate_solution(instance, solution)
        rows.append(
            {
                "multiplier": multiplier,
                "lambda": instance.lam,
                "least": evaluation.least_programmability,
                "total": evaluation.total_programmability,
                "feasible": evaluation.feasible,
            }
        )
    return rows


def counter_strategy_comparison(
    failed: tuple[int, ...] = DEFAULT_CASE,
    strategies: tuple[str, ...] = ("lfa", "bounded", "dag"),
    algorithms: tuple[str, ...] = ("pm", "pg", "retroflow"),
) -> list[dict[str, Any]]:
    """Effect of the path-programmability counting strategy.

    Absolute programmability shifts with the strategy; the algorithm
    ordering (PM ≈ PG > RetroFlow) should not.
    """
    rows = []
    for strategy in strategies:
        context = default_att_context(counter_strategy=strategy)
        instance = context.instance(FailureScenario(frozenset(failed)))
        solutions = [get_algorithm(name)(instance) for name in algorithms]
        for name, evaluation in zip(algorithms, evaluate_batch(instance, solutions)):
            rows.append(
                {
                    "strategy": strategy,
                    "algorithm": name,
                    "least": evaluation.least_programmability,
                    "total": evaluation.total_programmability,
                    "recovered_pct": 100.0 * evaluation.recovery_fraction,
                }
            )
    return rows


def phase2_ablation(
    context: ExperimentContext,
    failed: tuple[int, ...] = DEFAULT_CASE,
) -> list[dict[str, Any]]:
    """PM with/without phase 2, and with the greedy phase-2 order.

    Dropping phase 2 (resource saturation) should leave the least
    programmability unchanged while total programmability drops — the
    paper's design consideration 3.
    """
    instance = context.instance(FailureScenario(frozenset(failed)))
    variants: list[tuple[str, Any]] = [
        ("pm (paper order)", lambda: solve_pm(instance, phase2_order="paper")),
        ("pm (greedy order)", lambda: solve_pm(instance, phase2_order="greedy")),
        ("pm (no phase 2)", lambda: _pm_without_phase2(instance)),
    ]
    labels = [label for label, _ in variants]
    solutions = [run() for _, run in variants]
    rows = []
    for label, evaluation in zip(labels, evaluate_batch(instance, solutions)):
        rows.append(
            {
                "variant": label,
                "least": evaluation.least_programmability,
                "total": evaluation.total_programmability,
                "resource_used": sum(evaluation.controller_load.values()),
            }
        )
    return rows


def _pm_without_phase2(instance: FMSSMInstance, kernel: str | None = None):
    """Run PM with phase 2 disabled (the ``phase2=False`` variant).

    Routes through :func:`~repro.pm.algorithm.solve_pm`, so the default
    kernel is the array one; ``kernel="dict"`` runs the pseudo-code
    reference (``ProgrammabilityMedic(..., phase2=False)``) for
    cross-validation.
    """
    solution = solve_pm(instance, phase2=False, kernel=kernel)
    solution.algorithm = "pm-no-phase2"
    return solution


def delay_constraint_ablation(
    context: ExperimentContext,
    failed: tuple[int, ...] = DEFAULT_CASE,
) -> list[dict[str, Any]]:
    """PM vs PM-strict (honoring Eq. 14) on programmability and overhead."""
    instance = context.instance(FailureScenario(frozenset(failed)))
    cases = (("pm", False), ("pm-strict", True))
    solutions = [solve_pm(instance, enforce_delay=enforce) for _, enforce in cases]
    rows = []
    for (label, _), evaluation in zip(cases, evaluate_batch(instance, solutions)):
        rows.append(
            {
                "variant": label,
                "total": evaluation.total_programmability,
                "total_delay_ms": evaluation.total_delay_ms,
                "ideal_delay_ms": evaluation.ideal_delay_ms,
                "per_flow_overhead_ms": evaluation.per_flow_overhead_ms,
            }
        )
    return rows


def capacity_sweep(
    failed: tuple[int, ...] = (5, 13, 20),
    capacities: tuple[int, ...] = (420, 450, 500, 550, 600),
    algorithms: tuple[str, ...] = ("pm", "pg", "retroflow"),
) -> list[dict[str, Any]]:
    """Recovery fraction as controller capacity varies.

    Around the paper's capacity of 500 the three-failure cases sit at
    the edge of full recovery; sweeping capacity shows the crossover.
    """
    rows = []
    for capacity in capacities:
        context = default_att_context(capacity=capacity)
        instance = context.instance(FailureScenario(frozenset(failed)))
        solutions = [get_algorithm(name)(instance) for name in algorithms]
        for name, evaluation in zip(algorithms, evaluate_batch(instance, solutions)):
            rows.append(
                {
                    "capacity": capacity,
                    "algorithm": name,
                    "recovered_pct": 100.0 * evaluation.recovery_fraction,
                    "total": evaluation.total_programmability,
                }
            )
    return rows
