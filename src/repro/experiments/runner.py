"""Run recovery algorithms over failure scenarios and collect metrics."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario, enumerate_failure_scenarios
from repro.experiments.scenarios import ExperimentContext
from repro.fmssm.evaluation import RecoveryEvaluation, evaluate_batch
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.solution import RecoverySolution
from repro.perf.kernels import prepare_instance

if TYPE_CHECKING:
    from repro.resilience.degradation import DegradationReport, LadderPolicy

__all__ = [
    "ScenarioResult",
    "run_scenario",
    "run_failure_sweep",
    "run_failure_sweep_parallel",
    "PAPER_ALGORITHMS",
]

#: The four algorithms the paper compares (Section VI-B).
PAPER_ALGORITHMS: tuple[str, ...] = ("optimal", "retroflow", "pg", "pm")


@dataclass
class ScenarioResult:
    """Evaluations of every algorithm on one failure scenario."""

    scenario: FailureScenario
    evaluations: dict[str, RecoveryEvaluation] = field(default_factory=dict)
    solutions: dict[str, RecoverySolution] = field(default_factory=dict)
    #: Execution audit trail (mode, ladder demotions, checkpoint restores).
    #: ``None`` for results from the plain serial runner, which has no
    #: degradation machinery to report on.
    degradation: "DegradationReport | None" = None
    #: Free-form execution diagnostics that are not part of the answer —
    #: e.g. the parallel sweep's fan-out transport stats (payload bytes,
    #: worker init time).  Never consulted when comparing results.
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The scenario's canonical name, e.g. ``"(13, 20)"``."""
        return self.scenario.name

    def relative_total_programmability(self, reference: str = "retroflow") -> dict[str, float]:
        """Each algorithm's total programmability relative to ``reference``.

        This is the normalization of Figs. 4(b), 5(b) and 6(b).  A zero
        reference yields ``inf`` for non-zero algorithms.
        """
        base = self.evaluations[reference].total_programmability
        out = {}
        for name, evaluation in self.evaluations.items():
            if base > 0:
                out[name] = evaluation.total_programmability / base
            else:
                out[name] = float("inf") if evaluation.total_programmability else 1.0
        return out


def run_scenario(
    context: ExperimentContext,
    scenario: FailureScenario,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    optimal_time_limit_s: float = 300.0,
    optimal_compile: str = "sparse",
) -> ScenarioResult:
    """Run ``algorithms`` on one failure scenario.

    The ``"optimal"`` entry is routed through :func:`solve_optimal` with
    the time limit; an infeasible/timeout outcome is kept as an
    infeasible evaluation, mirroring the paper's missing Optimal bars.
    ``optimal_compile`` picks its compilation route (``"sparse"`` fast
    path or the ``"model"`` DSL route for cross-validation).
    """
    instance = context.instance(scenario)
    prepare_instance(instance)
    result = ScenarioResult(scenario=scenario)
    for name in algorithms:
        if name == "optimal":
            solution = solve_optimal(
                instance,
                time_limit_s=optimal_time_limit_s,
                compile=optimal_compile,
            )
        else:
            solution = get_algorithm(name)(instance)
        result.solutions[name] = solution
    # One batched evaluation over the scenario's solutions — the array
    # view is already warm, so each evaluation is a few reductions.
    for name, evaluation in zip(
        result.solutions, evaluate_batch(instance, result.solutions.values())
    ):
        result.evaluations[name] = evaluation
    return result


def run_failure_sweep(
    context: ExperimentContext,
    n_failures: int,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    optimal_time_limit_s: float = 300.0,
    optimal_compile: str = "sparse",
) -> list[ScenarioResult]:
    """Run all C(M, n_failures) failure combinations (Figs. 4-6)."""
    return [
        run_scenario(
            context,
            scenario,
            algorithms,
            optimal_time_limit_s,
            optimal_compile=optimal_compile,
        )
        for scenario in enumerate_failure_scenarios(context.plane, n_failures)
    ]


def run_failure_sweep_parallel(
    context: ExperimentContext,
    n_failures: int,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    optimal_time_limit_s: float = 300.0,
    max_workers: int | None = None,
    optimal_compile: str = "sparse",
    min_parallel_tasks: int | None = None,
    ladder: "LadderPolicy | None" = None,
    validate: bool = False,
    checkpoint_path: object = None,
    checkpoint_every: int = 4,
    transport: str = "auto",
    incremental: bool = False,
    executor: object = None,
    supervisor: object = None,
    store: object = None,
    lp_batch: int | None = None,
) -> list[ScenarioResult]:
    """:func:`run_failure_sweep` fanned over a process pool.

    The coefficient table is materialized once in the parent and shared
    with every worker, scenarios × algorithms run concurrently, and
    results merge deterministically in scenario order — output is
    identical to the serial sweep apart from ``solve_time_s`` wall
    clocks.  ``max_workers=None`` uses all CPUs; ``max_workers=1``, an
    unpicklable context, or a broken pool degrade gracefully to the
    serial path.  Small heuristic-only sweeps (fewer than
    ``min_parallel_tasks`` tasks, default 64, and no exact solver among
    the algorithms) also run serially — pool startup cannot pay off
    there; pass ``min_parallel_tasks=0`` to force the pool.

    ``ladder``, ``validate``, ``checkpoint_path`` and
    ``checkpoint_every`` enable the resilience layer; see
    :func:`repro.perf.sweep.parallel_sweep` and ``docs/robustness.md``.
    ``transport`` selects how the plan reaches workers (``"auto"`` /
    ``"shm"`` / ``"pickle"``) and ``incremental`` chains scenarios by
    failure-set similarity — both pure execution strategies with
    bit-identical results; see ``docs/performance.md``.  ``executor``
    submits to a warm :class:`~repro.perf.executor.SweepExecutor`
    instead of spawning a fresh pool — the right choice when several
    sweeps run back to back over one context.  ``supervisor`` threads a
    :class:`~repro.resilience.supervisor.SweepSupervisor` through the
    warm route (deadlines, quarantine, circuit breakers); see
    ``docs/robustness.md``.  ``store`` memoizes solves across runs and
    parent processes through a :class:`~repro.perf.store.SolveStore`
    (content-addressed, bit-identical hits; see ``docs/performance.md``).
    ``lp_batch`` stacks same-shaped exact solves into block-diagonal LP
    relaxations solved one HiGHS call per batch (:mod:`repro.perf.batch`)
    — another bit-identical execution strategy.
    """
    from repro.perf.sweep import parallel_sweep

    return parallel_sweep(
        context,
        enumerate_failure_scenarios(context.plane, n_failures),
        algorithms,
        optimal_time_limit_s=optimal_time_limit_s,
        max_workers=max_workers,
        optimal_compile=optimal_compile,
        min_parallel_tasks=min_parallel_tasks,
        ladder=ladder,
        validate=validate,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        transport=transport,
        incremental=incremental,
        executor=executor,
        supervisor=supervisor,
        store=store,
        lp_batch=lp_batch,
    )
