"""Experiment harness: scenarios, runners, figure/table regeneration."""

from repro.experiments.ablation import (
    capacity_sweep,
    counter_strategy_comparison,
    delay_constraint_ablation,
    lambda_sweep,
    phase2_ablation,
)
from repro.experiments.figures import (
    failure_figure_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    headline_ratios,
)
from repro.experiments.report import render_fig7, render_figure, render_table, render_table3
from repro.experiments.runner import (
    PAPER_ALGORITHMS,
    ScenarioResult,
    run_failure_sweep,
    run_failure_sweep_parallel,
    run_scenario,
)
from repro.experiments.successive import SuccessiveStage, run_successive
from repro.experiments.scenarios import (
    ExperimentContext,
    custom_context,
    default_att_context,
)
from repro.experiments.tables import PAPER_TABLE3_FLOWS, table3_data

__all__ = [
    "ExperimentContext",
    "default_att_context",
    "custom_context",
    "PAPER_ALGORITHMS",
    "ScenarioResult",
    "run_scenario",
    "run_failure_sweep",
    "run_failure_sweep_parallel",
    "SuccessiveStage",
    "run_successive",
    "failure_figure_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "headline_ratios",
    "table3_data",
    "PAPER_TABLE3_FLOWS",
    "render_table",
    "render_figure",
    "render_fig7",
    "render_table3",
    "lambda_sweep",
    "counter_strategy_comparison",
    "phase2_ablation",
    "delay_constraint_ablation",
    "capacity_sweep",
]
