"""The default evaluation setup (Section VI-A) and custom setups.

An :class:`ExperimentContext` bundles everything the runner needs:
topology, flow workload, control plane, programmability model and delay
model.  :func:`default_att_context` reproduces the paper's configuration:
the ATT backbone, one flow per ordered node pair on hop-count shortest
paths, six controllers at nodes {2, 5, 6, 13, 20, 22} with processing
ability 500 each, Table III's domain partition, and geodesic
switch-controller delays.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.control.delay import DelayModel
from repro.control.failures import FailureScenario
from repro.control.plane import ControlPlane
from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.geo.coordinates import GeoPoint
from repro.fmssm.build import build_instance
from repro.fmssm.instance import FMSSMInstance
from repro.perf.coefficients import CoefficientTable
from repro.routing.path_count import make_counter
from repro.routing.programmability import ProgrammabilityModel
from repro.topology.att import ATT_DEFAULT_CAPACITY, ATT_DOMAINS, att_topology
from repro.topology.graph import Topology
from repro.topology.partition import nearest_site_partition
from repro.types import ControllerId, NodeId

__all__ = [
    "ExperimentContext",
    "default_att_context",
    "custom_context",
    "hub_capacity_context",
]


@dataclass
class ExperimentContext:
    """Everything needed to ground FMSSM instances for one network."""

    topology: Topology
    flows: list[Flow]
    plane: ControlPlane
    programmability: ProgrammabilityModel
    delay_model: DelayModel
    #: Per-instance cache keyed by failed-controller set.
    _instances: dict[frozenset[ControllerId], FMSSMInstance] = field(
        default_factory=dict, repr=False
    )
    #: Materialized coefficient table, built on demand by sweeps.
    _table: CoefficientTable | None = field(default=None, repr=False)

    def instance(self, scenario: FailureScenario) -> FMSSMInstance:
        """Build (and cache) the FMSSM instance for a failure scenario.

        Once :meth:`materialize_table` has run, grounding uses the shared
        coefficient table (pure dictionary lookups) instead of the lazy
        model — the values are identical by construction.
        """
        key = scenario.failed
        if key not in self._instances:
            self._instances[key] = build_instance(
                self.plane,
                self.flows,
                self._table if self._table is not None else self.programmability,
                scenario,
                delay_model=self.delay_model,
            )
        return self._instances[key]

    def materialize_table(self) -> CoefficientTable:
        """Build (once) and return the shared coefficient table.

        Sweeps call this before fanning scenarios out so every scenario —
        and every worker process — reuses one materialization of the
        ``beta`` / ``p̄`` coefficients and the inverted switch index.
        """
        if self._table is None:
            self._table = self.programmability.table()
        return self._table


def default_att_context(
    capacity: int = ATT_DEFAULT_CAPACITY,
    counter_strategy: str = "lfa",
    flow_weight: str = "hops",
    delay_mode: str = "geodesic",
    **counter_kwargs: object,
) -> ExperimentContext:
    """The paper's evaluation setup on the embedded ATT backbone.

    Parameters expose the knobs the ablation benchmarks sweep: controller
    ``capacity`` (paper: 500), the path-programmability
    ``counter_strategy`` (``"lfa"``/``"bounded"``/``"dag"``), the routing
    metric for flow paths, and the delay interpretation.
    """
    topology = att_topology()
    flows = all_pairs_flows(topology, weight=flow_weight)
    plane = ControlPlane(topology, ATT_DOMAINS, capacity)
    counter = make_counter(topology, strategy=counter_strategy, **counter_kwargs)
    programmability = ProgrammabilityModel(counter, flows)
    delay_model = DelayModel(topology, mode=delay_mode)
    return ExperimentContext(
        topology=topology,
        flows=flows,
        plane=plane,
        programmability=programmability,
        delay_model=delay_model,
    )


def hub_capacity_context(
    n_leaves: int = 8,
    n_fail: int = 4,
    spare_per_leaf: int = 2,
    inflate: int = 2,
) -> tuple[ExperimentContext, list[FailureScenario]]:
    """A same-shaped scenario family whose exact solves are LP-bound.

    The batched-LP benchmarks need many structurally identical scenarios
    where the PM seed is optimal but only the *LP-relaxation* certificate
    can prove it (the closed-form combinatorial pre-certificate must
    miss, or there is no LP to batch).  This family is built for that:

    * a hub controller ``0`` (sites ``h``/``x``/``y``) with exactly
      ``n_fail * spare_per_leaf`` spare capacity, and ``n_leaves`` leaf
      controllers (two switches ``a_i``/``b_i`` each) with **zero**
      spare — their capacity equals their load;
    * per leaf, a "pure" flow ``a_i → x`` contributing one high-``p̄``
      pair and a "rich" flow ``a_i → h`` contributing two pairs, plus
      ``inflate`` filler flows that pad the leaf loads;
    * failing any ``n_fail`` of the leaf controllers yields
      ``C(n_leaves, n_fail)`` scenarios (70 at the defaults) that all
      share one (N, M, P) shape, are all feasible, and all
      certificate-accept through ``highs-lp`` — never through the
      pre-certificate, because the knapsack bound over-counts what the
      hub's capacity rows actually admit.

    Because every leaf controller has zero spare, the spare-zero
    reduction in :mod:`repro.perf.batch` shrinks each block by ~5x,
    which is what makes stacking them pay.  Returns the context and the
    scenario list.
    """
    lat0, lon0 = 40.0, -100.0
    nodes: dict[int, tuple[str, GeoPoint]] = {
        0: ("h", GeoPoint(lat0, lon0)),
        1: ("x", GeoPoint(lat0 + 0.15, lon0 + 0.10)),
        2: ("y", GeoPoint(lat0 + 0.15, lon0 - 0.10)),
    }
    edges: list[tuple[int, int]] = [(1, 0), (2, 0)]
    flows: list[Flow] = []
    for i in range(n_leaves):
        a, b = 3 + 2 * i, 4 + 2 * i
        theta = 2.0 * math.pi * i / n_leaves
        nodes[a] = (
            f"a{i}",
            GeoPoint(lat0 + 2.0 * math.cos(theta), lon0 + 2.0 * math.sin(theta)),
        )
        nodes[b] = (
            f"b{i}",
            GeoPoint(lat0 + 2.2 * math.cos(theta), lon0 + 2.2 * math.sin(theta)),
        )
        edges += [(a, b), (a, 0), (b, 0), (a, 1), (b, 2)]
        flows.append(Flow(a, 1, (a, 1)))  # pure: one high-pbar pair
        flows.append(Flow(a, 0, (a, b, 0)))  # rich: two pairs
        if inflate >= 1:
            flows.append(Flow(0, a, (0, a)))
        if inflate >= 2:
            flows.append(Flow(0, b, (0, b)))
        if inflate >= 3:
            flows.append(Flow(1, a, (1, a)))
        if inflate >= 4:
            flows.append(Flow(2, b, (2, b)))
    topology = Topology("hubfam", nodes, edges)
    domains: dict[ControllerId, list[NodeId]] = {0: [0, 1, 2]}
    sites: dict[ControllerId, NodeId] = {0: 0}
    for i in range(n_leaves):
        domains[i + 1] = [3 + 2 * i, 4 + 2 * i]
        sites[i + 1] = 3 + 2 * i
    # Capacities: every leaf controller gets exactly its load (zero
    # spare); the hub gets the spare the failed leaves will need.
    probe = ControlPlane(topology, domains, 10**6, sites=sites)
    loads = probe.domain_loads(flows)
    capacities = {
        c: loads[c] + (n_fail * spare_per_leaf if c == 0 else 0) for c in domains
    }
    plane = ControlPlane(topology, domains, capacities, sites=sites)
    counter = make_counter(topology, strategy="lfa")
    programmability = ProgrammabilityModel(counter, flows)
    delay_model = DelayModel(topology, mode="geodesic")
    context = ExperimentContext(
        topology=topology,
        flows=flows,
        plane=plane,
        programmability=programmability,
        delay_model=delay_model,
    )
    scenarios = [
        FailureScenario(tuple(c + 1 for c in combo))
        for combo in itertools.combinations(range(n_leaves), n_fail)
    ]
    return context, scenarios


def custom_context(
    topology: Topology,
    controller_sites: Sequence[NodeId],
    capacity: int | Mapping[ControllerId, int],
    domains: Mapping[ControllerId, Sequence[NodeId]] | None = None,
    counter_strategy: str = "lfa",
    flow_weight: str = "hops",
    delay_mode: str = "geodesic",
    **counter_kwargs: object,
) -> ExperimentContext:
    """Build a context for an arbitrary topology.

    When ``domains`` is omitted, switches join their geographically
    nearest controller site (:func:`nearest_site_partition`).
    """
    if domains is None:
        domains = nearest_site_partition(topology, controller_sites)
    flows = all_pairs_flows(topology, weight=flow_weight)
    plane = ControlPlane(topology, domains, capacity)
    counter = make_counter(topology, strategy=counter_strategy, **counter_kwargs)
    programmability = ProgrammabilityModel(counter, flows)
    delay_model = DelayModel(topology, mode=delay_mode)
    return ExperimentContext(
        topology=topology,
        flows=flows,
        plane=plane,
        programmability=programmability,
        delay_model=delay_model,
    )
