"""The default evaluation setup (Section VI-A) and custom setups.

An :class:`ExperimentContext` bundles everything the runner needs:
topology, flow workload, control plane, programmability model and delay
model.  :func:`default_att_context` reproduces the paper's configuration:
the ATT backbone, one flow per ordered node pair on hop-count shortest
paths, six controllers at nodes {2, 5, 6, 13, 20, 22} with processing
ability 500 each, Table III's domain partition, and geodesic
switch-controller delays.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.control.delay import DelayModel
from repro.control.failures import FailureScenario
from repro.control.plane import ControlPlane
from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.fmssm.build import build_instance
from repro.fmssm.instance import FMSSMInstance
from repro.perf.coefficients import CoefficientTable
from repro.routing.path_count import make_counter
from repro.routing.programmability import ProgrammabilityModel
from repro.topology.att import ATT_DEFAULT_CAPACITY, ATT_DOMAINS, att_topology
from repro.topology.graph import Topology
from repro.topology.partition import nearest_site_partition
from repro.types import ControllerId, NodeId

__all__ = ["ExperimentContext", "default_att_context", "custom_context"]


@dataclass
class ExperimentContext:
    """Everything needed to ground FMSSM instances for one network."""

    topology: Topology
    flows: list[Flow]
    plane: ControlPlane
    programmability: ProgrammabilityModel
    delay_model: DelayModel
    #: Per-instance cache keyed by failed-controller set.
    _instances: dict[frozenset[ControllerId], FMSSMInstance] = field(
        default_factory=dict, repr=False
    )
    #: Materialized coefficient table, built on demand by sweeps.
    _table: CoefficientTable | None = field(default=None, repr=False)

    def instance(self, scenario: FailureScenario) -> FMSSMInstance:
        """Build (and cache) the FMSSM instance for a failure scenario.

        Once :meth:`materialize_table` has run, grounding uses the shared
        coefficient table (pure dictionary lookups) instead of the lazy
        model — the values are identical by construction.
        """
        key = scenario.failed
        if key not in self._instances:
            self._instances[key] = build_instance(
                self.plane,
                self.flows,
                self._table if self._table is not None else self.programmability,
                scenario,
                delay_model=self.delay_model,
            )
        return self._instances[key]

    def materialize_table(self) -> CoefficientTable:
        """Build (once) and return the shared coefficient table.

        Sweeps call this before fanning scenarios out so every scenario —
        and every worker process — reuses one materialization of the
        ``beta`` / ``p̄`` coefficients and the inverted switch index.
        """
        if self._table is None:
            self._table = self.programmability.table()
        return self._table


def default_att_context(
    capacity: int = ATT_DEFAULT_CAPACITY,
    counter_strategy: str = "lfa",
    flow_weight: str = "hops",
    delay_mode: str = "geodesic",
    **counter_kwargs: object,
) -> ExperimentContext:
    """The paper's evaluation setup on the embedded ATT backbone.

    Parameters expose the knobs the ablation benchmarks sweep: controller
    ``capacity`` (paper: 500), the path-programmability
    ``counter_strategy`` (``"lfa"``/``"bounded"``/``"dag"``), the routing
    metric for flow paths, and the delay interpretation.
    """
    topology = att_topology()
    flows = all_pairs_flows(topology, weight=flow_weight)
    plane = ControlPlane(topology, ATT_DOMAINS, capacity)
    counter = make_counter(topology, strategy=counter_strategy, **counter_kwargs)
    programmability = ProgrammabilityModel(counter, flows)
    delay_model = DelayModel(topology, mode=delay_mode)
    return ExperimentContext(
        topology=topology,
        flows=flows,
        plane=plane,
        programmability=programmability,
        delay_model=delay_model,
    )


def custom_context(
    topology: Topology,
    controller_sites: Sequence[NodeId],
    capacity: int | Mapping[ControllerId, int],
    domains: Mapping[ControllerId, Sequence[NodeId]] | None = None,
    counter_strategy: str = "lfa",
    flow_weight: str = "hops",
    delay_mode: str = "geodesic",
    **counter_kwargs: object,
) -> ExperimentContext:
    """Build a context for an arbitrary topology.

    When ``domains`` is omitted, switches join their geographically
    nearest controller site (:func:`nearest_site_partition`).
    """
    if domains is None:
        domains = nearest_site_partition(topology, controller_sites)
    flows = all_pairs_flows(topology, weight=flow_weight)
    plane = ControlPlane(topology, domains, capacity)
    counter = make_counter(topology, strategy=counter_strategy, **counter_kwargs)
    programmability = ProgrammabilityModel(counter, flows)
    delay_model = DelayModel(topology, mode=delay_mode)
    return ExperimentContext(
        topology=topology,
        flows=flows,
        plane=plane,
        programmability=programmability,
        delay_model=delay_model,
    )
