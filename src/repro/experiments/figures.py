"""Data generation for every figure of the paper's evaluation.

Each ``figN_data`` function returns plain dict/list structures holding
the exact series the corresponding figure plots; ``repro.experiments.
report`` renders them as text tables and the benchmarks under
``benchmarks/`` regenerate them end to end.

====== ================================================================
Fig. 4 one controller failure: (a) programmability distribution,
       (b) total programmability relative to RetroFlow, (c) % recovered
       flows, (d) per-flow communication overhead
Fig. 5 two failures: (a)-(c) as above, (d) recovered switches,
       (e) controller resource used, (f) per-flow overhead
Fig. 6 three failures: same as Fig. 5 (Optimal may have no result)
Fig. 7 PM computation time as a percentage of Optimal's
====== ================================================================
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.experiments.runner import (
    PAPER_ALGORITHMS,
    ScenarioResult,
    run_failure_sweep,
    run_failure_sweep_parallel,
)
from repro.experiments.scenarios import ExperimentContext
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.summary import FiveNumberSummary, summarize

__all__ = [
    "failure_figure_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "headline_ratios",
]


def _case_record(result: ScenarioResult, algorithms: Sequence[str]) -> dict[str, Any]:
    if "retroflow" in result.evaluations:
        relative = result.relative_total_programmability("retroflow")
    else:
        relative = {}
    record: dict[str, Any] = {"case": result.name, "algorithms": {}}
    for name in algorithms:
        evaluation = result.evaluations[name]
        values = evaluation.programmability_values()
        summary: FiveNumberSummary = summarize(values)
        record["algorithms"][name] = {
            "feasible": evaluation.feasible,
            "programmability_summary": summary,
            "fairness": jain_fairness_index(values) if evaluation.feasible else None,
            "least_programmability": evaluation.least_programmability,
            "total_programmability": evaluation.total_programmability,
            "total_vs_retroflow": relative.get(name),
            "recovered_flows_pct": 100.0 * evaluation.recovery_fraction,
            "recovered_switches": evaluation.recovered_switches,
            "offline_switches": evaluation.offline_switches,
            "controller_load": dict(evaluation.controller_load),
            "resource_used": sum(evaluation.controller_load.values()),
            "per_flow_overhead_ms": evaluation.per_flow_overhead_ms,
            "solve_time_s": evaluation.solve_time_s,
        }
    return record


def failure_figure_data(
    context: ExperimentContext,
    n_failures: int,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    optimal_time_limit_s: float = 300.0,
    results: Sequence[ScenarioResult] | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    executor: object = None,
    store: object = None,
    lp_batch: int | None = None,
) -> dict[str, Any]:
    """All per-case series for an ``n_failures``-failure figure.

    Pass precomputed ``results`` (e.g. shared across figures by the
    benchmark harness) to skip re-running the sweep.  Fresh sweeps fan
    out over a process pool by default (results are bit-identical to
    the serial runner; small heuristic-only sweeps stay serial via the
    pool's ``min_parallel_tasks`` heuristic) — set ``parallel=False``
    to force the in-process serial sweep, or pass a warm ``executor``
    (:class:`~repro.perf.executor.SweepExecutor`) when generating
    several figures over one context.  ``store`` memoizes solves in a
    :class:`~repro.perf.store.SolveStore`, so regenerating a figure
    replays earlier runs' solves bit-identically.  ``lp_batch``
    batches same-shaped exact solves into block-diagonal LPs
    (:mod:`repro.perf.batch`) — bit-identical, one HiGHS call per batch.
    """
    if results is None:
        if parallel:
            results = run_failure_sweep_parallel(
                context,
                n_failures,
                algorithms,
                optimal_time_limit_s,
                max_workers=max_workers,
                executor=executor,
                store=store,
                lp_batch=lp_batch,
            )
        else:
            results = run_failure_sweep(
                context, n_failures, algorithms, optimal_time_limit_s
            )
    return {
        "n_failures": n_failures,
        "algorithms": list(algorithms),
        "cases": [_case_record(r, algorithms) for r in results],
        "total_spare": {
            r.name: context.instance(r.scenario).total_spare for r in results
        },
    }


def fig4_data(context: ExperimentContext, **kwargs: Any) -> dict[str, Any]:
    """Fig. 4 — one controller failure (6 cases)."""
    return failure_figure_data(context, 1, **kwargs)


def fig5_data(context: ExperimentContext, **kwargs: Any) -> dict[str, Any]:
    """Fig. 5 — two controller failures (15 cases)."""
    return failure_figure_data(context, 2, **kwargs)


def fig6_data(context: ExperimentContext, **kwargs: Any) -> dict[str, Any]:
    """Fig. 6 — three controller failures (20 cases)."""
    return failure_figure_data(context, 3, **kwargs)


def fig7_data(
    context: ExperimentContext,
    optimal_time_limit_s: float = 300.0,
    results_by_n: dict[int, Sequence[ScenarioResult]] | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    executor: object = None,
    store: object = None,
    lp_batch: int | None = None,
) -> dict[str, Any]:
    """Fig. 7 — PM computation time as a percentage of Optimal's.

    Runs PM and Optimal on every 1-, 2- and 3-failure combination and
    reports per-scenario and mean percentages (cases where Optimal has
    no result are excluded from the mean, as in the paper).  Pass
    ``results_by_n`` (from sweeps that already include both algorithms)
    to reuse existing solves.  Fresh sweeps use the process pool unless
    ``parallel=False`` (identical results either way).
    """
    out: dict[str, Any] = {"scenarios": {}, "mean_pct": {}}
    for n_failures in (1, 2, 3):
        if results_by_n is not None and n_failures in results_by_n:
            results = results_by_n[n_failures]
        elif parallel:
            results = run_failure_sweep_parallel(
                context,
                n_failures,
                ("optimal", "pm"),
                optimal_time_limit_s,
                max_workers=max_workers,
                executor=executor,
                store=store,
                lp_batch=lp_batch,
            )
        else:
            results = run_failure_sweep(
                context, n_failures, ("optimal", "pm"), optimal_time_limit_s
            )
        rows = []
        for result in results:
            opt = result.evaluations["optimal"]
            pm = result.evaluations["pm"]
            pct = None
            if opt.feasible and opt.solve_time_s > 0:
                pct = 100.0 * pm.solve_time_s / opt.solve_time_s
            rows.append(
                {
                    "case": result.name,
                    "pm_time_s": pm.solve_time_s,
                    "optimal_time_s": opt.solve_time_s if opt.feasible else None,
                    "pct": pct,
                }
            )
        valid = [r["pct"] for r in rows if r["pct"] is not None]
        out["scenarios"][n_failures] = rows
        out["mean_pct"][n_failures] = sum(valid) / len(valid) if valid else None
    return out


def headline_ratios(figure_data: dict[str, Any]) -> dict[str, Any]:
    """The paper's headline claim: PM's total programmability vs RetroFlow.

    Returns the min/max/mean of PM's relative total programmability and
    the case attaining the maximum (the paper reports up to 315 % under
    two failures — case (13, 20) — and 340 % under three).
    """
    ratios = []
    for case in figure_data["cases"]:
        ratio = case["algorithms"]["pm"]["total_vs_retroflow"]
        if ratio is not None and ratio != float("inf"):
            ratios.append((ratio, case["case"]))
    if not ratios:
        return {"min_pct": None, "max_pct": None, "mean_pct": None, "argmax_case": None}
    ratios.sort()
    values = [r for r, _ in ratios]
    return {
        "min_pct": 100.0 * values[0],
        "max_pct": 100.0 * values[-1],
        "mean_pct": 100.0 * sum(values) / len(values),
        "argmax_case": ratios[-1][1],
    }
