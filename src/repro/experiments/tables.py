"""Regeneration of the paper's Table III.

Table III lists, for the default ATT setup, each controller, the switches
in its domain and the number of flows in each switch.  We regenerate the
flow counts from our workload and report them next to the paper's values
so the reproduction gap is visible at a glance.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.scenarios import ExperimentContext
from repro.flows.paths import switch_flow_counts

__all__ = ["PAPER_TABLE3_FLOWS", "table3_data"]

#: The paper's Table III "Number of flows" row, keyed by switch id.
PAPER_TABLE3_FLOWS: dict[int, int] = {
    2: 143, 3: 71, 9: 107, 16: 55,
    4: 49, 5: 143, 8: 53, 14: 61,
    0: 81, 1: 49, 6: 89, 7: 97,
    10: 63, 11: 59, 12: 71, 13: 213,
    15: 67, 19: 49, 20: 63,
    17: 125, 18: 49, 21: 81, 22: 111, 23: 49, 24: 57,
}


def table3_data(context: ExperimentContext) -> dict[str, Any]:
    """Regenerate Table III: controller -> switches -> flow counts.

    Returns per-switch measured gamma alongside the paper's value (when
    the switch id exists in the paper's table) plus aggregate totals.
    """
    gamma = switch_flow_counts(context.flows)
    rows = []
    for controller_id in context.plane.controller_ids:
        for switch in context.plane.domain(controller_id):
            rows.append(
                {
                    "controller": controller_id,
                    "switch": switch,
                    "label": context.topology.label(switch),
                    "flows": int(gamma.get(switch, 0)),
                    "paper_flows": PAPER_TABLE3_FLOWS.get(switch),
                }
            )
    measured_total = sum(r["flows"] for r in rows)
    paper_total = sum(v for v in PAPER_TABLE3_FLOWS.values())
    domain_loads = context.plane.domain_loads(context.flows)
    capacities = {
        c: context.plane.controller(c).capacity for c in context.plane.controller_ids
    }
    return {
        "rows": rows,
        "measured_total": measured_total,
        "paper_total": paper_total,
        "domain_loads": domain_loads,
        "spare_capacity": {
            c: capacities[c] - domain_loads[c] for c in capacities
        },
    }
