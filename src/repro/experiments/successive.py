"""Successive-failure experiments.

The paper notes controllers "may fail simultaneously or fail
successively"; the evaluation only shows simultaneous combinations.
This runner formalizes the successive case: after each additional
failure, recovery is recomputed from scratch on the new failure set, and
per-stage metrics are collected — the degradation trajectory of the
control plane.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines import get_algorithm
from repro.control.failures import successive_scenarios
from repro.experiments.scenarios import ExperimentContext
from repro.fmssm.evaluation import RecoveryEvaluation, evaluate_solution
from repro.metrics.fairness import jain_fairness_index
from repro.types import ControllerId

__all__ = ["SuccessiveStage", "run_successive"]


@dataclass
class SuccessiveStage:
    """Metrics after one more controller failed."""

    failed: tuple[ControllerId, ...]
    evaluation: RecoveryEvaluation
    #: Spare control resource remaining before this stage's recovery.
    total_spare: int
    #: Recoverable offline flows at this stage.
    recoverable_flows: int
    #: Jain's fairness of the recovered programmability distribution.
    fairness: float = field(default=1.0)


def run_successive(
    context: ExperimentContext,
    order: Sequence[ControllerId],
    algorithm: str = "pm",
    parallel: bool = True,
    max_workers: int | None = None,
    executor: object = None,
) -> list[SuccessiveStage]:
    """Fail controllers in ``order`` and re-solve after each failure.

    Each stage is an independent re-solve on its cumulative failure
    set, so the stages route through the process-pool sweep like any
    other scenario list (results come back in stage order, bit-identical
    to the serial loop; short heuristic-only chains stay in-process via
    the pool's ``min_parallel_tasks`` heuristic).  ``parallel=False``
    forces the serial loop; ``executor`` submits to a warm
    :class:`~repro.perf.executor.SweepExecutor` shared across runs.
    """
    scenarios = list(successive_scenarios(tuple(order)))
    if parallel:
        from repro.perf.sweep import parallel_sweep

        results = parallel_sweep(
            context,
            scenarios,
            (algorithm,),
            max_workers=max_workers,
            executor=executor,
        )
        evaluations = [result.evaluations[algorithm] for result in results]
    else:
        solver = get_algorithm(algorithm)
        evaluations = []
        for scenario in scenarios:
            instance = context.instance(scenario)
            evaluations.append(evaluate_solution(instance, solver(instance)))
    stages: list[SuccessiveStage] = []
    for scenario, evaluation in zip(scenarios, evaluations):
        instance = context.instance(scenario)
        stages.append(
            SuccessiveStage(
                failed=tuple(sorted(scenario.failed)),
                evaluation=evaluation,
                total_spare=instance.total_spare,
                recoverable_flows=len(instance.recoverable_flows),
                fairness=jain_fairness_index(evaluation.programmability_values()),
            )
        )
    return stages
