"""Successive-failure experiments.

The paper notes controllers "may fail simultaneously or fail
successively"; the evaluation only shows simultaneous combinations.
This runner formalizes the successive case: after each additional
failure, recovery is recomputed from scratch on the new failure set, and
per-stage metrics are collected — the degradation trajectory of the
control plane.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines import get_algorithm
from repro.control.failures import successive_scenarios
from repro.experiments.scenarios import ExperimentContext
from repro.fmssm.evaluation import RecoveryEvaluation, evaluate_solution
from repro.metrics.fairness import jain_fairness_index
from repro.types import ControllerId

__all__ = ["SuccessiveStage", "run_successive"]


@dataclass
class SuccessiveStage:
    """Metrics after one more controller failed."""

    failed: tuple[ControllerId, ...]
    evaluation: RecoveryEvaluation
    #: Spare control resource remaining before this stage's recovery.
    total_spare: int
    #: Recoverable offline flows at this stage.
    recoverable_flows: int
    #: Jain's fairness of the recovered programmability distribution.
    fairness: float = field(default=1.0)


def run_successive(
    context: ExperimentContext,
    order: Sequence[ControllerId],
    algorithm: str = "pm",
) -> list[SuccessiveStage]:
    """Fail controllers in ``order`` and re-solve after each failure."""
    stages: list[SuccessiveStage] = []
    solver = get_algorithm(algorithm)
    for scenario in successive_scenarios(tuple(order)):
        instance = context.instance(scenario)
        evaluation = evaluate_solution(instance, solver(instance))
        stages.append(
            SuccessiveStage(
                failed=tuple(sorted(scenario.failed)),
                evaluation=evaluation,
                total_spare=instance.total_spare,
                recoverable_flows=len(instance.recoverable_flows),
                fairness=jain_fairness_index(evaluation.programmability_values()),
            )
        )
    return stages
