"""Plain-text rendering of figure/table data.

The benchmarks print these tables so the regenerated results can be read
directly from the benchmark output and compared with the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = [
    "render_table",
    "render_figure",
    "render_fig7",
    "render_table3",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.2f}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    n_rows = len(columns[0]) - 1
    for r in range(1, n_rows + 1):
        lines.append(
            "  ".join(columns[i][r].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def render_figure(data: dict[str, Any]) -> str:
    """Render a Fig. 4/5/6-style dataset as a sequence of tables."""
    algorithms = data["algorithms"]
    sections = [f"=== {data['n_failures']} controller failure(s): {len(data['cases'])} cases ==="]

    # (a) programmability distribution
    rows = []
    for case in data["cases"]:
        for name in algorithms:
            a = case["algorithms"][name]
            s = a["programmability_summary"]
            rows.append(
                (case["case"], name, s.minimum, s.q1, s.median, s.q3, s.maximum)
            )
    sections.append("(a) path programmability of recovered flows (box stats)")
    sections.append(
        render_table(("case", "algorithm", "min", "q1", "median", "q3", "max"), rows)
    )

    # (b) total programmability relative to RetroFlow
    rows = []
    for case in data["cases"]:
        row: list[Any] = [case["case"]]
        for name in algorithms:
            a = case["algorithms"][name]
            rel = a["total_vs_retroflow"]
            if not a["feasible"]:
                row.append("n/a")
            elif rel is None or rel == float("inf"):
                row.append("inf")
            else:
                row.append(f"{100 * rel:.0f}%")
        rows.append(tuple(row))
    sections.append("(b) total programmability relative to RetroFlow")
    sections.append(render_table(("case", *algorithms), rows))

    # (c) recovered flows
    rows = []
    for case in data["cases"]:
        row = [case["case"]]
        for name in algorithms:
            a = case["algorithms"][name]
            row.append("n/a" if not a["feasible"] else f"{a['recovered_flows_pct']:.1f}%")
        rows.append(tuple(row))
    sections.append("(c) recovered programmable flows")
    sections.append(render_table(("case", *algorithms), rows))

    # (d) recovered switches
    rows = []
    for case in data["cases"]:
        row = [case["case"]]
        for name in algorithms:
            a = case["algorithms"][name]
            row.append(
                "n/a" if not a["feasible"] else f"{a['recovered_switches']}/{a['offline_switches']}"
            )
        rows.append(tuple(row))
    sections.append("(d) recovered offline switches")
    sections.append(render_table(("case", *algorithms), rows))

    # (e) control resource used
    rows = []
    for case in data["cases"]:
        row = [case["case"], data["total_spare"][case["case"]]]
        for name in algorithms:
            a = case["algorithms"][name]
            row.append("n/a" if not a["feasible"] else a["resource_used"])
        rows.append(tuple(row))
    sections.append("(e) control resource used (of total spare)")
    sections.append(render_table(("case", "spare", *algorithms), rows))

    # (f) per-flow communication overhead
    rows = []
    for case in data["cases"]:
        row = [case["case"]]
        for name in algorithms:
            a = case["algorithms"][name]
            row.append(
                "n/a" if not a["feasible"] else f"{a['per_flow_overhead_ms']:.3f}"
            )
        rows.append(tuple(row))
    sections.append("(f) per-flow communication overhead (ms)")
    sections.append(render_table(("case", *algorithms), rows))

    return "\n\n".join(sections)


def render_fig7(data: dict[str, Any]) -> str:
    """Render Fig. 7: PM computation time as % of Optimal."""
    sections = ["=== Fig. 7: PM computation time relative to Optimal ==="]
    for n_failures, rows in data["scenarios"].items():
        table_rows = []
        for r in rows:
            table_rows.append(
                (
                    r["case"],
                    f"{1000 * r['pm_time_s']:.2f}",
                    "n/a" if r["optimal_time_s"] is None else f"{r['optimal_time_s']:.3f}",
                    "n/a" if r["pct"] is None else f"{r['pct']:.2f}%",
                )
            )
        mean = data["mean_pct"][n_failures]
        sections.append(
            f"{n_failures} failure(s) — mean PM/Optimal: "
            + ("n/a" if mean is None else f"{mean:.2f}%")
        )
        sections.append(
            render_table(("case", "pm (ms)", "optimal (s)", "pm/optimal"), table_rows)
        )
    return "\n\n".join(sections)


def render_table3(data: dict[str, Any]) -> str:
    """Render the regenerated Table III next to the paper's values."""
    rows = [
        (
            r["controller"],
            r["switch"],
            r["label"],
            r["flows"],
            "-" if r["paper_flows"] is None else r["paper_flows"],
        )
        for r in data["rows"]
    ]
    table = render_table(
        ("controller", "switch", "city", "flows (measured)", "flows (paper)"), rows
    )
    footer = (
        f"\ntotal measured={data['measured_total']} vs paper={data['paper_total']}\n"
        f"domain loads: {data['domain_loads']}\n"
        f"spare capacity: {data['spare_capacity']}"
    )
    return "=== Table III: controllers, switches, flows ===\n" + table + footer
