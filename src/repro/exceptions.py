"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch everything produced by the package with one handler while
still distinguishing finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "ParseError",
    "FlowError",
    "RoutingError",
    "DataPlaneError",
    "TableMissError",
    "ForwardingLoopError",
    "ControlPlaneError",
    "CapacityError",
    "ScenarioError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "SolverTimeoutError",
    "SolutionError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation on it is invalid."""


class ParseError(TopologyError):
    """A topology file (e.g. Topology Zoo GML) could not be parsed."""


class FlowError(ReproError):
    """A flow definition is invalid (unknown endpoints, empty path, ...)."""


class RoutingError(ReproError):
    """A routing computation failed (no path, bad strategy, ...)."""


class DataPlaneError(ReproError):
    """Base class for data-plane simulation errors."""


class TableMissError(DataPlaneError):
    """A packet matched no entry in any table of a switch pipeline."""


class ForwardingLoopError(DataPlaneError):
    """A packet revisited a switch during forwarding simulation."""


class ControlPlaneError(ReproError):
    """Base class for control-plane errors."""


class CapacityError(ControlPlaneError):
    """A controller's control-resource budget would be exceeded."""


class ScenarioError(ControlPlaneError):
    """A failure scenario is invalid (unknown controller, none active, ...)."""


class ModelError(ReproError):
    """An optimization model is malformed."""


class SolverError(ReproError):
    """Base class for optimization solver failures."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class SolverTimeoutError(SolverError):
    """The solver hit its time limit before proving optimality."""


class SolutionError(ReproError):
    """A recovery solution violates the FMSSM constraints."""
