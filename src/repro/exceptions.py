"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch everything produced by the package with one handler while
still distinguishing finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "ParseError",
    "FlowError",
    "RoutingError",
    "DataPlaneError",
    "TableMissError",
    "ForwardingLoopError",
    "ControlPlaneError",
    "CapacityError",
    "ScenarioError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "SolverTimeoutError",
    "RungTimeoutError",
    "SolutionError",
    "ValidationError",
    "ChaosError",
    "CheckpointError",
    "DegradedResultWarning",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation on it is invalid."""


class ParseError(TopologyError):
    """A topology file (e.g. Topology Zoo GML) could not be parsed."""


class FlowError(ReproError):
    """A flow definition is invalid (unknown endpoints, empty path, ...)."""


class RoutingError(ReproError):
    """A routing computation failed (no path, bad strategy, ...)."""


class DataPlaneError(ReproError):
    """Base class for data-plane simulation errors."""


class TableMissError(DataPlaneError):
    """A packet matched no entry in any table of a switch pipeline."""


class ForwardingLoopError(DataPlaneError):
    """A packet revisited a switch during forwarding simulation."""


class ControlPlaneError(ReproError):
    """Base class for control-plane errors."""


class CapacityError(ControlPlaneError):
    """A controller's control-resource budget would be exceeded."""


class ScenarioError(ControlPlaneError):
    """A failure scenario is invalid (unknown controller, none active, ...)."""


class ModelError(ReproError):
    """An optimization model is malformed."""


class SolverError(ReproError):
    """Base class for optimization solver failures."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class SolverTimeoutError(SolverError):
    """The solver hit its time limit before proving optimality."""


class RungTimeoutError(SolverTimeoutError):
    """One rung of a degradation ladder timed out without an incumbent.

    Carries the wall-clock time the rung consumed, the rung's name, and
    the rung the caller fell back to (``None`` when the error propagates
    with no fallback available).
    """

    def __init__(
        self,
        message: str,
        elapsed_s: float = 0.0,
        rung: str = "",
        fallback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.elapsed_s = float(elapsed_s)
        self.rung = rung
        self.fallback = fallback


class SolutionError(ReproError):
    """A recovery solution violates the FMSSM constraints."""


class ValidationError(SolutionError):
    """The independent validator rejected a solver's solution.

    Raised by :mod:`repro.resilience.validate` when a returned solution
    violates the instance's constraints (Eqs. 2-6 / 12-14) — i.e. "the
    solver said so" failed independent verification.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ChaosError(ReproError):
    """An error injected on purpose by the fault-injection harness."""


class CheckpointError(ReproError):
    """A sweep checkpoint is unreadable or belongs to a different sweep."""


class DegradedResultWarning(UserWarning, ReproError):
    """A result was produced by a degraded execution path.

    Emitted (via :func:`warnings.warn`) when a sweep falls back to serial
    execution, when a solver rung times out and a lower rung's answer is
    used instead, and similar events — the result is still correct, but
    produced more slowly or by a weaker method than requested.  Inherits
    from :class:`ReproError` so ``except ReproError`` handlers and the
    hierarchy tests see it, and from :class:`UserWarning` so it works as
    a warning category.
    """
