"""Legacy (OSPF-style) destination-based routing tables.

When a flow runs in legacy mode on the hybrid pipeline (Fig. 2(c) of the
paper), the switch forwards it by destination using an OSPF routing table.
OSPF computes per-destination shortest paths over link costs; here the
cost metric defaults to propagation delay, matching the flow workload's
shortest paths so that legacy-mode flows stay on their original paths.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import RoutingError
from repro.routing.shortest import weight_attribute
from repro.topology.graph import Topology
from repro.types import NodeId

__all__ = ["LegacyRoutingTable", "compute_legacy_tables"]


class LegacyRoutingTable:
    """Destination → next-hop map for one switch."""

    def __init__(self, switch: NodeId, next_hops: dict[NodeId, NodeId]) -> None:
        self._switch = switch
        self._next_hops = dict(next_hops)

    @property
    def switch(self) -> NodeId:
        """The switch this table belongs to."""
        return self._switch

    def next_hop(self, dst: NodeId) -> NodeId:
        """Next hop toward ``dst``.

        Raises :class:`RoutingError` for the switch's own address or an
        unknown destination.
        """
        if dst == self._switch:
            raise RoutingError(f"switch {self._switch!r} is itself the destination")
        try:
            return self._next_hops[dst]
        except KeyError:
            raise RoutingError(
                f"switch {self._switch!r} has no legacy route to {dst!r}"
            ) from None

    def destinations(self) -> tuple[NodeId, ...]:
        """All routable destinations, sorted."""
        return tuple(sorted(self._next_hops))

    def __len__(self) -> int:
        return len(self._next_hops)

    def __repr__(self) -> str:
        return f"LegacyRoutingTable(switch={self._switch}, routes={len(self)})"


def compute_legacy_tables(
    topology: Topology, weight: str = "delay"
) -> dict[NodeId, LegacyRoutingTable]:
    """OSPF-style routing tables for every switch.

    For each destination the next hop is the first hop of the (unique,
    deterministic) shortest path under ``weight``.  Using the same metric
    as flow generation guarantees that a legacy-mode flow keeps following
    its original forwarding path.
    """
    attr = weight_attribute(weight)
    tables: dict[NodeId, dict[NodeId, NodeId]] = {n: {} for n in topology.nodes}
    for src in topology.nodes:
        paths = nx.single_source_dijkstra_path(topology.graph, src, weight=attr or 1)
        for dst, path in paths.items():
            if dst == src:
                continue
            tables[src][dst] = path[1]
    return {
        switch: LegacyRoutingTable(switch, next_hops)
        for switch, next_hops in tables.items()
    }
