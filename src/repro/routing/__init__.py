"""Routing substrate: shortest paths, k-paths, legacy tables, path counting."""

from repro.routing.kpaths import k_shortest_paths, path_weight
from repro.routing.ospf import LegacyRoutingTable, compute_legacy_tables
from repro.routing.path_count import (
    BoundedSimplePathCounter,
    LoopFreeAlternateCounter,
    PathCounter,
    ShortestDagCounter,
    make_counter,
)
from repro.routing.programmability import ProgrammabilityModel
from repro.routing.shortest import (
    delay_distances_to,
    hop_distances_to,
    shortest_path_dag,
    weight_attribute,
)

__all__ = [
    "k_shortest_paths",
    "path_weight",
    "LegacyRoutingTable",
    "compute_legacy_tables",
    "PathCounter",
    "BoundedSimplePathCounter",
    "ShortestDagCounter",
    "LoopFreeAlternateCounter",
    "make_counter",
    "ProgrammabilityModel",
    "hop_distances_to",
    "delay_distances_to",
    "shortest_path_dag",
    "weight_attribute",
]
