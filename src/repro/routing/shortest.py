"""Shortest-path helpers built on Dijkstra.

Provides deterministic single-pair paths, all-target hop distances (used to
prune simple-path enumeration), and the shortest-path DAG used by one of
the programmability counting strategies.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import RoutingError
from repro.topology.graph import Topology
from repro.types import NodeId

__all__ = [
    "weight_attribute",
    "hop_distances_to",
    "delay_distances_to",
    "shortest_path_dag",
]

_WEIGHTS = {"delay": "delay_ms", "distance": "distance_m", "hops": None}


def weight_attribute(weight: str) -> str | None:
    """Map a metric name to the topology edge attribute (``None`` = hops)."""
    try:
        return _WEIGHTS[weight]
    except KeyError:
        raise RoutingError(f"unknown weight metric {weight!r}; use one of {sorted(_WEIGHTS)}") from None


def hop_distances_to(topology: Topology, dst: NodeId) -> dict[NodeId, int]:
    """Hop count from every node to ``dst`` (BFS)."""
    if dst not in topology:
        raise RoutingError(f"unknown node {dst!r}")
    return dict(nx.single_source_shortest_path_length(topology.graph, dst))


def delay_distances_to(topology: Topology, dst: NodeId) -> dict[NodeId, float]:
    """Propagation delay of the min-delay path from every node to ``dst``."""
    if dst not in topology:
        raise RoutingError(f"unknown node {dst!r}")
    return dict(
        nx.single_source_dijkstra_path_length(topology.graph, dst, weight="delay_ms")
    )


def shortest_path_dag(
    topology: Topology, dst: NodeId, weight: str = "delay"
) -> dict[NodeId, tuple[NodeId, ...]]:
    """The shortest-path DAG toward ``dst``.

    Returns, for every node ``u != dst``, the tuple of neighbors ``v`` such
    that ``dist(u) == w(u, v) + dist(v)`` under the chosen metric — i.e.
    every next hop that lies on *some* shortest path from ``u`` to ``dst``.
    ECMP-style routing fans out over exactly these successors.
    """
    attr = weight_attribute(weight)
    graph = topology.graph
    if attr is None:
        dist: dict[NodeId, float] = {
            n: float(d)
            for n, d in nx.single_source_shortest_path_length(graph, dst).items()
        }

        def edge_w(u: NodeId, v: NodeId) -> float:
            return 1.0

    else:
        dist = dict(nx.single_source_dijkstra_path_length(graph, dst, weight=attr))

        def edge_w(u: NodeId, v: NodeId) -> float:
            return graph.edges[u, v][attr]

    dag: dict[NodeId, tuple[NodeId, ...]] = {}
    tolerance = 1e-9
    for u in topology.nodes:
        if u == dst:
            continue
        successors = tuple(
            sorted(
                v
                for v in graph.neighbors(u)
                if abs(dist[u] - (edge_w(u, v) + dist[v])) <= tolerance * max(1.0, dist[u])
            )
        )
        dag[u] = successors
    return dag
