"""Yen's algorithm for k-shortest loopless paths.

Implemented from first principles (no networkx ``shortest_simple_paths``)
so the library owns the substrate end to end.  Used by examples that
install alternate paths after recovery and by path-diversity metrics.
"""

from __future__ import annotations

import heapq
from itertools import count

import networkx as nx

from repro.exceptions import RoutingError
from repro.routing.shortest import weight_attribute
from repro.topology.graph import Topology
from repro.types import NodeId, Path

__all__ = ["k_shortest_paths", "path_weight"]


def path_weight(topology: Topology, path: Path, weight: str = "delay") -> float:
    """Total weight of ``path`` under the chosen metric."""
    attr = weight_attribute(weight)
    if len(path) < 2:
        raise RoutingError(f"path must have at least 2 nodes: {path!r}")
    total = 0.0
    for u, v in zip(path, path[1:]):
        if not topology.has_edge(u, v):
            raise RoutingError(f"path uses missing link ({u!r}, {v!r})")
        total += 1.0 if attr is None else topology.graph.edges[u, v][attr]
    return total


def _dijkstra(
    graph: nx.Graph,
    src: NodeId,
    dst: NodeId,
    attr: str | None,
    banned_nodes: set[NodeId],
    banned_edges: set[tuple[NodeId, NodeId]],
) -> tuple[float, Path] | None:
    """Shortest path avoiding banned nodes/edges; ``None`` if unreachable."""
    if src in banned_nodes or dst in banned_nodes:
        return None
    dist: dict[NodeId, float] = {src: 0.0}
    prev: dict[NodeId, NodeId] = {}
    tie = count()
    heap: list[tuple[float, int, NodeId]] = [(0.0, next(tie), src)]
    done: set[NodeId] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == dst:
            path = [dst]
            while path[-1] != src:
                path.append(prev[path[-1]])
            return d, tuple(reversed(path))
        done.add(u)
        for v in graph.neighbors(u):
            if v in banned_nodes or v in done:
                continue
            if (u, v) in banned_edges or (v, u) in banned_edges:
                continue
            w = 1.0 if attr is None else graph.edges[u, v][attr]
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, next(tie), v))
    return None


def k_shortest_paths(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    k: int,
    weight: str = "delay",
) -> list[Path]:
    """Up to ``k`` loopless paths from ``src`` to ``dst``, shortest first.

    Classic Yen's algorithm: repeatedly derives spur paths by banning, for
    each prefix of the previous result, the edges that would recreate an
    already-returned path.  Returns fewer than ``k`` paths when the graph
    does not contain that many simple paths.
    """
    if k < 1:
        raise RoutingError(f"k must be at least 1: {k!r}")
    if src == dst:
        raise RoutingError("src and dst must differ")
    if src not in topology or dst not in topology:
        raise RoutingError(f"unknown endpoint: {src!r} or {dst!r}")
    attr = weight_attribute(weight)
    graph = topology.graph

    first = _dijkstra(graph, src, dst, attr, set(), set())
    if first is None:  # pragma: no cover - topologies are connected
        return []
    accepted: list[tuple[float, Path]] = [first]
    candidates: list[tuple[float, int, Path]] = []
    seen: set[Path] = {first[1]}
    tie = count()

    while len(accepted) < k:
        _, prev_path = accepted[-1]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root = prev_path[: i + 1]
            banned_edges: set[tuple[NodeId, NodeId]] = set()
            for _, p in accepted:
                if p[: i + 1] == root and len(p) > i + 1:
                    banned_edges.add((p[i], p[i + 1]))
            for _, __, p in candidates:
                if p[: i + 1] == root and len(p) > i + 1:
                    banned_edges.add((p[i], p[i + 1]))
            banned_nodes = set(root[:-1])
            spur = _dijkstra(graph, spur_node, dst, attr, banned_nodes, banned_edges)
            if spur is None:
                continue
            spur_cost, spur_path = spur
            total = tuple(root[:-1]) + spur_path
            if total in seen:
                continue
            root_cost = sum(
                1.0 if attr is None else graph.edges[u, v][attr]
                for u, v in zip(root, root[1:])
            )
            seen.add(total)
            heapq.heappush(candidates, (root_cost + spur_cost, next(tie), total))
        if not candidates:
            break
        cost, _, best = heapq.heappop(candidates)
        accepted.append((cost, best))

    return [p for _, p in accepted]
