"""The programmability model: ``beta``, ``p`` and ``p̄`` for flows.

Binds a :class:`~repro.routing.path_count.PathCounter` to a set of flows
and exposes the paper's per-(flow, switch) coefficients.  This object is
the single source of truth consumed by the FMSSM formulation, the PM
heuristic, and all baselines — so every algorithm is scored on identical
coefficients.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.exceptions import FlowError
from repro.flows.flow import Flow
from repro.routing.path_count import PathCounter
from repro.types import FlowId, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.coefficients import CoefficientTable

__all__ = ["ProgrammabilityModel"]


class ProgrammabilityModel:
    """Per-(flow, switch) programmability coefficients.

    Parameters
    ----------
    counter:
        Path-counting strategy (determines the topology too).
    flows:
        The flow population.  Coefficients are defined for pairs
        ``(flow, switch)`` where the switch is a transit switch of the
        flow's path.
    """

    def __init__(self, counter: PathCounter, flows: Iterable[Flow]) -> None:
        self._counter = counter
        self._flows: dict[FlowId, Flow] = {}
        for flow in flows:
            if flow.flow_id in self._flows:
                raise FlowError(f"duplicate flow id {flow.flow_id!r}")
            self._flows[flow.flow_id] = flow
        self._max_pro: dict[FlowId, int] = {}
        self._table: CoefficientTable | None = None

    @property
    def counter(self) -> PathCounter:
        """The underlying path counter."""
        return self._counter

    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows, in insertion order."""
        return tuple(self._flows.values())

    def flow(self, flow_id: FlowId) -> Flow:
        """Look up a flow by its ``(src, dst)`` id."""
        try:
            return self._flows[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id {flow_id!r}") from None

    # ------------------------------------------------------------------
    # Paper coefficients
    # ------------------------------------------------------------------
    def p(self, flow: Flow, switch: NodeId) -> int:
        """``p_i^l`` — forwarding choices at ``switch`` toward the flow's dst.

        Zero when the switch is not a transit switch of the flow.
        """
        if switch not in flow.transit_switches:
            return 0
        return self._counter.count(switch, flow.dst)

    def beta(self, flow: Flow, switch: NodeId) -> int:
        """``beta_i^l`` — 1 iff the flow transits ``switch`` with ≥ 2 paths."""
        return 1 if self.p(flow, switch) >= 2 else 0

    def pbar(self, flow: Flow, switch: NodeId) -> int:
        """``p̄_i^l = beta_i^l * p_i^l`` — programmability gained in SDN mode."""
        p = self.p(flow, switch)
        return p if p >= 2 else 0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def programmable_switches(self, flow: Flow) -> tuple[NodeId, ...]:
        """Transit switches of ``flow`` where ``beta == 1``."""
        return tuple(s for s in flow.transit_switches if self.beta(flow, s))

    def max_programmability(self, flow: Flow) -> int:
        """Upper bound on ``pro^l``: every programmable switch in SDN mode.

        Cached per flow — ``default_lambda`` and the evaluators query it
        repeatedly with identical arguments.
        """
        cached = self._max_pro.get(flow.flow_id)
        if cached is None:
            cached = sum(self.pbar(flow, s) for s in flow.transit_switches)
            self._max_pro[flow.flow_id] = cached
        return cached

    def flows_programmable_at(self, switch: NodeId) -> tuple[Flow, ...]:
        """Flows with ``beta == 1`` at ``switch`` (the paper's line-7 set).

        Served from the materialized table's inverted index — O(answer)
        instead of an O(|flows|) scan per call.
        """
        return self.table().flows_programmable_at(switch)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def table(self) -> CoefficientTable:
        """The fully materialized (and cached) coefficient table.

        Building it evaluates every (transit switch, flow) coefficient
        once; afterwards aggregate queries are dictionary lookups and the
        table can be pickled to worker processes for parallel sweeps.
        """
        if self._table is None:
            from repro.perf.coefficients import CoefficientTable

            self._table = CoefficientTable.from_model(self)
        return self._table
