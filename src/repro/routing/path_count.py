"""Path-programmability counting — the paper's ``beta``, ``p`` and ``p̄``.

Section IV of the paper defines, for flow ``f^l`` and offline switch
``s_i`` on its path:

* ``beta_i^l = 1`` iff ``s_i`` lies on the flow's forwarding path *and*
  has at least two paths to the flow's destination;
* ``p_i^l`` — "the number of paths from switch ``s_i``'s next hops to
  ``f^l``'s destination", i.e. how many distinct forwarding choices the
  controller can program at ``s_i``;
* ``p̄_i^l = beta_i^l * p_i^l`` — the programmability the flow gains when
  it runs in SDN mode at ``s_i`` under an active controller.

Exhaustive simple-path counting is exponential, so the paper's tiny
example generalizes ambiguously; we provide two well-defined strategies:

:class:`BoundedSimplePathCounter`
    Counts simple paths whose hop length is at most the shortest hop
    distance plus a ``slack`` (default 2).  With pruning by hop-distance
    this is fast on WAN-scale graphs and reproduces the magnitudes the
    paper reports (least programmability 2, hub flows much higher).

:class:`ShortestDagCounter`
    Counts distinct *shortest* paths (by delay or hops) via the
    shortest-path DAG — the most conservative notion, standard in ECMP.

:class:`LoopFreeAlternateCounter` (default)
    Counts distinct *next hops* through which the destination stays
    reachable without looping back, within a hop-length slack — the
    loop-free-alternates notion from IP fast-reroute.  This reads "the
    number of paths from switch s_i's next hops" as one usable path per
    programmable next hop: exactly the forwarding choices a controller
    can install at the switch.  It is the library default because it (a)
    is the physically meaningful count of programmable actions, (b)
    yields homogeneous values (bounded by node degree), under which the
    paper's reported near-equality of PM, PG and Optimal reproduces, and
    (c) keeps eligibility broad enough that three-controller failures
    exhaust controller capacity, reproducing the paper's partial-recovery
    and Optimal-infeasibility cases.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from weakref import WeakKeyDictionary

import networkx as nx

from repro.exceptions import RoutingError
from repro.routing.shortest import hop_distances_to, shortest_path_dag
from repro.topology.graph import Topology
from repro.types import NodeId

__all__ = [
    "PathCounter",
    "BoundedSimplePathCounter",
    "ShortestDagCounter",
    "LoopFreeAlternateCounter",
    "make_counter",
    "shared_hop_distances",
    "export_hop_distances",
    "adopt_hop_distances",
]

#: Per-topology cache of per-destination hop-distance maps.  Counters of
#: different strategies (and several counters on one topology, as a
#: coefficient-table build creates) share one BFS per destination instead
#: of each recomputing it.  Keyed weakly so dropping the topology drops
#: its distances.
_HOP_DISTANCES: "WeakKeyDictionary[Topology, dict[NodeId, dict[NodeId, int]]]" = (
    WeakKeyDictionary()
)


def shared_hop_distances(topology: Topology, dst: NodeId) -> dict[NodeId, int]:
    """Hop distances of every node to ``dst``, cached per topology.

    The returned dict is shared — callers must treat it as read-only.
    """
    per_topology = _HOP_DISTANCES.get(topology)
    if per_topology is None:
        per_topology = {}
        _HOP_DISTANCES[topology] = per_topology
    distances = per_topology.get(dst)
    if distances is None:
        distances = hop_distances_to(topology, dst)
        per_topology[dst] = distances
    return distances


def export_hop_distances(
    topology: Topology,
) -> dict[NodeId, dict[NodeId, int]]:
    """Snapshot of the topology's cached hop-distance tables.

    The cross-run store (:mod:`repro.perf.store`) persists this after a
    sweep; :func:`adopt_hop_distances` is its inverse.  Returns an empty
    dict when nothing has been computed for ``topology`` yet.
    """
    per_topology = _HOP_DISTANCES.get(topology)
    if not per_topology:
        return {}
    return {dst: dict(distances) for dst, distances in per_topology.items()}


def adopt_hop_distances(
    topology: Topology, tables: dict[NodeId, dict[NodeId, int]]
) -> None:
    """Seed the hop-distance cache from persisted tables.

    Already-computed destinations are kept (they are authoritative for
    this process); only missing ones are adopted, so a stale or foreign
    table can never displace a locally computed BFS result.
    """
    per_topology = _HOP_DISTANCES.get(topology)
    if per_topology is None:
        per_topology = {}
        _HOP_DISTANCES[topology] = per_topology
    for dst, distances in tables.items():
        per_topology.setdefault(dst, dict(distances))


class PathCounter(ABC):
    """Counts forwarding paths between node pairs on a fixed topology."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._cache: dict[tuple[NodeId, NodeId], int] = {}

    @property
    def topology(self) -> Topology:
        """The topology this counter operates on."""
        return self._topology

    def count(self, src: NodeId, dst: NodeId) -> int:
        """Number of paths from ``src`` to ``dst`` under this strategy.

        Results are cached; ``count(x, x)`` is 0 by convention (a switch
        cannot reroute a flow it terminates).
        """
        if src not in self._topology or dst not in self._topology:
            raise RoutingError(f"unknown endpoint: {src!r} or {dst!r}")
        if src == dst:
            return 0
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._count(src, dst)
        return self._cache[key]

    @abstractmethod
    def _count(self, src: NodeId, dst: NodeId) -> int:
        """Strategy-specific uncached count."""


class BoundedSimplePathCounter(PathCounter):
    """Simple paths of hop length ≤ shortest + ``slack``.

    Parameters
    ----------
    topology:
        The graph to count on.
    slack:
        Extra hops allowed beyond the shortest hop distance.  ``slack=0``
        counts hop-shortest paths only; the default ``2`` admits modest
        detours, matching how much longer a rerouted WAN path may
        reasonably be.
    max_count:
        Enumeration stops once this many paths are found, guarding
        against pathological dense graphs.  The count saturates at this
        value rather than raising.
    """

    def __init__(self, topology: Topology, slack: int = 2, max_count: int = 1_000_000) -> None:
        if slack < 0:
            raise ValueError(f"slack must be non-negative: {slack!r}")
        if max_count < 1:
            raise ValueError(f"max_count must be positive: {max_count!r}")
        super().__init__(topology)
        self._slack = slack
        self._max_count = max_count

    @property
    def slack(self) -> int:
        """Extra hops allowed beyond the shortest hop distance."""
        return self._slack

    def _distances(self, dst: NodeId) -> dict[NodeId, int]:
        return shared_hop_distances(self._topology, dst)

    def _count(self, src: NodeId, dst: NodeId) -> int:
        dist = self._distances(dst)
        if src not in dist:  # pragma: no cover - topologies are connected
            return 0
        budget = dist[src] + self._slack
        graph = self._topology.graph
        found = 0
        # Iterative DFS; each stack frame is (node, remaining_budget).
        visited: set[NodeId] = {src}
        stack: list[tuple[NodeId, int, list[NodeId]]] = [
            (src, budget, [n for n in graph.neighbors(src)])
        ]
        while stack:
            node, remaining, pending = stack[-1]
            if not pending:
                stack.pop()
                visited.discard(node)
                continue
            nxt = pending.pop()
            if nxt in visited:
                continue
            if nxt == dst:
                found += 1
                if found >= self._max_count:
                    return self._max_count
                continue
            # Prune: reaching dst from nxt needs dist[nxt] more hops.
            if remaining - 1 < dist.get(nxt, float("inf")):
                continue
            visited.add(nxt)
            stack.append((nxt, remaining - 1, [n for n in graph.neighbors(nxt)]))
        return found


class ShortestDagCounter(PathCounter):
    """Distinct shortest paths counted over the shortest-path DAG.

    ``weight`` selects the shortest-path metric; the default ``"hops"``
    matches the workload's routing metric — with continuous delay
    weights shortest paths are almost surely unique and every count
    degenerates to 1 (no programmability anywhere).
    """

    def __init__(self, topology: Topology, weight: str = "hops") -> None:
        super().__init__(topology)
        self._weight = weight
        self._dags: dict[NodeId, dict[NodeId, tuple[NodeId, ...]]] = {}
        self._counts: dict[NodeId, dict[NodeId, int]] = {}

    @property
    def weight(self) -> str:
        """Metric used to build the shortest-path DAG."""
        return self._weight

    def _dag_counts(self, dst: NodeId) -> dict[NodeId, int]:
        if dst in self._counts:
            return self._counts[dst]
        dag = self._dags.setdefault(dst, shortest_path_dag(self._topology, dst, self._weight))
        counts: dict[NodeId, int] = {dst: 1}

        def resolve(node: NodeId) -> int:
            # The DAG is acyclic, so memoized recursion terminates; an
            # explicit stack avoids Python recursion limits on long paths.
            stack = [node]
            while stack:
                top = stack[-1]
                if top in counts:
                    stack.pop()
                    continue
                missing = [s for s in dag[top] if s not in counts]
                if missing:
                    stack.extend(missing)
                else:
                    counts[top] = sum(counts[s] for s in dag[top])
                    stack.pop()
            return counts[node]

        for node in self._topology.nodes:
            if node != dst:
                resolve(node)
        self._counts[dst] = counts
        return counts

    def _count(self, src: NodeId, dst: NodeId) -> int:
        return self._dag_counts(dst).get(src, 0)


class LoopFreeAlternateCounter(PathCounter):
    """Programmable next hops with loop-free reachability (default).

    A neighbor ``v`` of ``src`` counts as a usable forwarding choice for
    destination ``dst`` when a simple path ``src -> v -> ... -> dst``
    exists that does not revisit ``src`` and whose total hop length is at
    most ``hop_shortest(src, dst) + slack``.  The count is the number of
    such neighbors — bounded by the node degree, which keeps
    programmability values homogeneous across flows.

    Parameters
    ----------
    topology:
        The graph to count on.
    slack:
        Extra hops allowed beyond the shortest hop distance (default 1:
        a detour may be one hop longer than the shortest path).
    """

    def __init__(self, topology: Topology, slack: int = 1) -> None:
        if slack < 0:
            raise ValueError(f"slack must be non-negative: {slack!r}")
        super().__init__(topology)
        self._slack = slack
        self._dist_excluding: dict[tuple[NodeId, NodeId], dict[NodeId, int]] = {}

    @property
    def slack(self) -> int:
        """Extra hops allowed beyond the shortest hop distance."""
        return self._slack

    def _distances(self, dst: NodeId) -> dict[NodeId, int]:
        return shared_hop_distances(self._topology, dst)

    def _distances_excluding(self, dst: NodeId, excluded: NodeId) -> dict[NodeId, int]:
        """Hop distances to ``dst`` in the graph without ``excluded``."""
        key = (dst, excluded)
        if key not in self._dist_excluding:
            graph = self._topology.graph
            subgraph = graph.subgraph(n for n in graph if n != excluded)
            if dst in subgraph:
                self._dist_excluding[key] = dict(
                    nx.single_source_shortest_path_length(subgraph, dst)
                )
            else:  # pragma: no cover - excluded == dst is guarded by count()
                self._dist_excluding[key] = {}
        return self._dist_excluding[key]

    def _count(self, src: NodeId, dst: NodeId) -> int:
        budget = self._distances(dst)[src] + self._slack
        avoiding_src = self._distances_excluding(dst, src)
        count = 0
        for neighbor in self._topology.graph.neighbors(src):
            if neighbor == dst:
                count += 1
                continue
            detour = avoiding_src.get(neighbor)
            if detour is not None and 1 + detour <= budget:
                count += 1
        return count


_STRATEGIES = ("lfa", "bounded", "dag")


def make_counter(
    topology: Topology,
    strategy: str = "lfa",
    **kwargs: object,
) -> PathCounter:
    """Factory: build a :class:`PathCounter` by strategy name.

    ``"lfa"`` -> :class:`LoopFreeAlternateCounter` (default),
    ``"bounded"`` -> :class:`BoundedSimplePathCounter`,
    ``"dag"`` -> :class:`ShortestDagCounter`.  Extra keyword arguments are
    forwarded to the strategy constructor.
    """
    if strategy == "lfa":
        return LoopFreeAlternateCounter(topology, **kwargs)  # type: ignore[arg-type]
    if strategy == "bounded":
        return BoundedSimplePathCounter(topology, **kwargs)  # type: ignore[arg-type]
    if strategy == "dag":
        return ShortestDagCounter(topology, **kwargs)  # type: ignore[arg-type]
    raise RoutingError(f"unknown counting strategy {strategy!r}; use one of {_STRATEGIES}")
