"""Bridge from recovery solutions to traffic-engineering inputs.

Turns a :class:`~repro.fmssm.solution.RecoverySolution` into the two
things the :class:`~repro.te.engineer.TrafficEngineer` needs: which
switches each flow can be deviated at, and which switches may carry new
path suffixes (i.e. can receive flow entries).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.control.failures import FailureScenario
from repro.control.plane import ControlPlane
from repro.flows.flow import Flow
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import FlowId, NodeId

__all__ = ["programmable_switches", "controllable_nodes"]


def programmable_switches(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    all_flows: Iterable[Flow],
) -> dict[FlowId, frozenset[NodeId]]:
    """Per-flow switches where the flow can be deviated after recovery.

    Every flow keeps programmability at its *online* transit switches
    (their own controllers never failed).  At *offline* switches a flow
    is programmable only where the recovery put it in SDN mode under a
    serving controller — this is exactly where algorithms differ.
    """
    offline = set(instance.switches)
    active_pairs = set(solution.active_pairs()) if solution.feasible else set()
    out: dict[FlowId, frozenset[NodeId]] = {}
    for flow in all_flows:
        switches = {
            s for s in flow.transit_switches if s not in offline
        }
        switches.update(
            s
            for s in flow.transit_switches
            if s in offline and (s, flow.flow_id) in active_pairs
        )
        out[flow.flow_id] = frozenset(switches)
    return out


def controllable_nodes(
    plane: ControlPlane,
    scenario: FailureScenario,
    solution: RecoverySolution,
) -> frozenset[NodeId]:
    """Switches that can receive new flow entries after recovery.

    Online switches are always controllable; offline switches only when
    the recovery reconnected them to the control plane — via a
    switch-controller mapping, or (for flow-level solutions like PG) by
    serving at least one pair there through the middle layer.  A new
    path suffix through an unrecovered offline switch could not be
    installed.
    """
    offline = set(scenario.offline_switches(plane))
    online = {n for n in plane.topology.nodes if n not in offline}
    reconnected: set[NodeId] = set()
    if solution.feasible:
        reconnected.update(solution.mapping)
        reconnected.update(s for s, _ in solution.active_pairs())
    return frozenset(online | (offline & reconnected))
