"""Traffic engineering over recovered programmability (application layer)."""

from repro.te.capacity import (
    betweenness_capacities,
    link_loads,
    link_utilization,
    max_link_utilization,
    uniform_capacities,
)
from repro.te.engineer import RerouteAction, TrafficEngineer, TrafficEngineeringResult
from repro.te.recovered import controllable_nodes, programmable_switches

__all__ = [
    "uniform_capacities",
    "betweenness_capacities",
    "link_loads",
    "link_utilization",
    "max_link_utilization",
    "TrafficEngineer",
    "TrafficEngineeringResult",
    "RerouteAction",
    "programmable_switches",
    "controllable_nodes",
]
