"""Greedy traffic engineering over *programmable* flows.

After a recovery, only flows with SDN-mode hops under an active
controller can be rerouted.  :class:`TrafficEngineer` relieves congested
links by deviating such flows at their programmable switches — the
application-level payoff of programmability the paper's introduction
motivates ("flexible flow control ... can significantly improve
utilization of WANs").

The engineer is deliberately simple and deterministic: repeatedly take
the most-utilized link, try to move one crossing flow off it by
deviating at one of its programmable switches onto the shortest suffix
that avoids the hot link, accept the move if the MLU strictly improves,
and stop when no move helps.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import RoutingError
from repro.flows.flow import Flow
from repro.te.capacity import link_utilization, max_link_utilization
from repro.topology.graph import Topology
from repro.types import Edge, FlowId, NodeId

__all__ = ["RerouteAction", "TrafficEngineeringResult", "TrafficEngineer"]


@dataclass(frozen=True)
class RerouteAction:
    """One accepted deviation."""

    flow_id: FlowId
    at_switch: NodeId
    relieved_link: Edge
    old_path: tuple[NodeId, ...]
    new_path: tuple[NodeId, ...]


@dataclass
class TrafficEngineeringResult:
    """Outcome of a TE run."""

    flows: dict[FlowId, Flow]
    mlu_before: float
    mlu_after: float
    actions: list[RerouteAction] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative MLU reduction (0 when nothing improved)."""
        if self.mlu_before <= 0:
            return 0.0
        return (self.mlu_before - self.mlu_after) / self.mlu_before


class TrafficEngineer:
    """Relieve congestion by rerouting programmable flows.

    Parameters
    ----------
    topology:
        The data-plane graph.
    capacities:
        Per-undirected-link capacities (see :mod:`repro.te.capacity`).
    allowed_nodes:
        Switches new path suffixes may transit.  A deviated flow needs
        new entries along its suffix, so the suffix must stay on
        controllable switches — online ones plus offline switches that
        were remapped by the recovery.  ``None`` allows every node.
    """

    def __init__(
        self,
        topology: Topology,
        capacities: Mapping[Edge, float],
        allowed_nodes: frozenset[NodeId] | None = None,
    ) -> None:
        self._topology = topology
        self._capacities = dict(capacities)
        self._allowed = allowed_nodes

    def _suffix_avoiding(
        self,
        start: NodeId,
        dst: NodeId,
        hot_link: Edge,
        banned_nodes: set[NodeId],
    ) -> tuple[NodeId, ...] | None:
        """Min-delay path ``start -> dst`` avoiding a link and nodes."""
        graph = self._topology.graph

        def allowed(node: NodeId) -> bool:
            if node in banned_nodes:
                return False
            if node in (start, dst):
                return True
            return self._allowed is None or node in self._allowed

        sub = nx.subgraph_view(
            graph,
            filter_node=allowed,
            filter_edge=lambda u, v: {u, v} != set(hot_link),
        )
        if start not in sub or dst not in sub:
            return None
        try:
            return tuple(nx.shortest_path(sub, start, dst, weight="delay_ms"))
        except nx.NetworkXNoPath:
            return None

    def relieve(
        self,
        flows: Mapping[FlowId, Flow],
        programmable: Mapping[FlowId, frozenset[NodeId] | set[NodeId] | tuple[NodeId, ...]],
        max_actions: int = 100,
    ) -> TrafficEngineeringResult:
        """Greedily reduce MLU by deviating programmable flows.

        Parameters
        ----------
        flows:
            Current flow set by id (paths carry the load).
        programmable:
            Flow id → switches where the flow may be deviated (its
            SDN-mode hops under active controllers).  Flows missing from
            the mapping are pinned.
        max_actions:
            Upper bound on accepted reroutes.
        """
        if max_actions < 0:
            raise RoutingError(f"max_actions must be >= 0: {max_actions!r}")
        current: dict[FlowId, Flow] = dict(flows)
        mlu_before = max_link_utilization(
            self._topology, current.values(), self._capacities
        )
        actions: list[RerouteAction] = []

        while len(actions) < max_actions:
            utilization = link_utilization(
                self._topology, current.values(), self._capacities
            )
            hot_link, hot_value = max(utilization.items(), key=lambda kv: kv[1])
            best_move: tuple[float, RerouteAction, Flow] | None = None

            crossing = [
                flow
                for flow in current.values()
                if any({u, v} == set(hot_link) for u, v in zip(flow.path, flow.path[1:]))
            ]
            # Try heavier flows first: moving them relieves more.
            crossing.sort(key=lambda f: (-f.demand, f.flow_id))
            for flow in crossing:
                switches = programmable.get(flow.flow_id, ())
                for switch in flow.transit_switches:
                    if switch not in switches:
                        continue
                    idx = flow.path.index(switch)
                    # Deviating helps only if the hot link lies after the
                    # deviation point.
                    remaining = list(zip(flow.path[idx:], flow.path[idx + 1 :]))
                    if not any({u, v} == set(hot_link) for u, v in remaining):
                        continue
                    prefix = flow.path[: idx + 1]
                    suffix = self._suffix_avoiding(
                        switch, flow.dst, hot_link, set(prefix[:-1])
                    )
                    if suffix is None:
                        continue
                    new_path = prefix[:-1] + suffix
                    if len(set(new_path)) != len(new_path):
                        continue
                    candidate = Flow(flow.src, flow.dst, new_path, demand=flow.demand)
                    trial = dict(current)
                    trial[flow.flow_id] = candidate
                    new_mlu = max_link_utilization(
                        self._topology, trial.values(), self._capacities
                    )
                    if new_mlu < hot_value - 1e-12 and (
                        best_move is None or new_mlu < best_move[0]
                    ):
                        best_move = (
                            new_mlu,
                            RerouteAction(
                                flow_id=flow.flow_id,
                                at_switch=switch,
                                relieved_link=hot_link,
                                old_path=flow.path,
                                new_path=new_path,
                            ),
                            candidate,
                        )
                if best_move is not None and best_move[0] < hot_value * 0.95:
                    break  # good enough for this round; apply it
            if best_move is None:
                break
            _, action, candidate = best_move
            current[action.flow_id] = candidate
            actions.append(action)

        mlu_after = max_link_utilization(
            self._topology, current.values(), self._capacities
        )
        return TrafficEngineeringResult(
            flows=current,
            mlu_before=mlu_before,
            mlu_after=mlu_after,
            actions=actions,
        )
