"""Link capacities and utilization for the traffic-engineering layer.

The paper motivates path programmability with network performance under
traffic variation: a programmable flow can be moved off a congested
link.  This module supplies the measurement side — link loads, link
capacities, and the classic max-link-utilization (MLU) objective.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import networkx as nx

from repro.exceptions import TopologyError
from repro.flows.flow import Flow
from repro.topology.graph import Topology
from repro.types import Edge

__all__ = [
    "uniform_capacities",
    "betweenness_capacities",
    "link_loads",
    "link_utilization",
    "max_link_utilization",
]


def _canonical(edge: Edge) -> Edge:
    u, v = edge
    return (u, v) if u <= v else (v, u)


def uniform_capacities(topology: Topology, capacity: float) -> dict[Edge, float]:
    """The same capacity on every link."""
    if capacity <= 0:
        raise TopologyError(f"link capacity must be positive: {capacity!r}")
    return {edge: float(capacity) for edge in topology.edges()}


def betweenness_capacities(
    topology: Topology,
    base: float,
    scale: float = 4.0,
) -> dict[Edge, float]:
    """Capacities proportional to edge betweenness (core links are fat).

    ``capacity = base * (1 + scale * normalized_betweenness)`` — a
    standard synthetic provisioning when real capacities are unknown:
    heavily-used core links get up to ``1 + scale`` times the base.
    """
    if base <= 0 or scale < 0:
        raise TopologyError(f"invalid capacity parameters base={base!r} scale={scale!r}")
    betweenness = nx.edge_betweenness_centrality(topology.graph, normalized=True)
    top = max(betweenness.values()) or 1.0
    return {
        _canonical(edge): base * (1.0 + scale * value / top)
        for edge, value in betweenness.items()
    }


def link_loads(topology: Topology, flows: Iterable[Flow]) -> dict[Edge, float]:
    """Aggregate demand per undirected link (both directions summed)."""
    loads = {edge: 0.0 for edge in topology.edges()}
    for flow in flows:
        for u, v in zip(flow.path, flow.path[1:]):
            edge = _canonical((u, v))
            if edge not in loads:
                raise TopologyError(f"flow {flow.flow_id} uses missing link {edge}")
            loads[edge] += flow.demand
    return loads


def link_utilization(
    topology: Topology,
    flows: Iterable[Flow],
    capacities: Mapping[Edge, float],
) -> dict[Edge, float]:
    """Per-link utilization (load / capacity)."""
    loads = link_loads(topology, flows)
    out = {}
    for edge, load in loads.items():
        capacity = capacities.get(edge)
        if capacity is None or capacity <= 0:
            raise TopologyError(f"no positive capacity for link {edge}")
        out[edge] = load / capacity
    return out


def max_link_utilization(
    topology: Topology,
    flows: Iterable[Flow],
    capacities: Mapping[Edge, float],
) -> float:
    """The MLU objective: the utilization of the busiest link."""
    utilization = link_utilization(topology, flows, capacities)
    return max(utilization.values()) if utilization else 0.0
