"""Discrete-event simulation: engine + recovery timeline."""

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.timeline import (
    TimelineParameters,
    TimelineReport,
    simulate_recovery_timeline,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "TimelineParameters",
    "TimelineReport",
    "simulate_recovery_timeline",
]
