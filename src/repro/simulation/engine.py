"""A minimal discrete-event simulation engine.

Classic event-queue design: events are (time, sequence, action) triples
ordered by time (FIFO among ties); actions may schedule further events.
Used by :mod:`repro.simulation.timeline` to model the recovery control
loop, and reusable for any other time-domain experiment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ReproError

__all__ = ["SimulationError", "Simulator"]


class SimulationError(ReproError):
    """Invalid use of the simulation engine."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """Event-driven simulator with a millisecond clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay_ms`` after the current time."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ms!r}")
        self._seq += 1
        heapq.heappush(self._queue, _Event(self._now + delay_ms, self._seq, action))

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute time (not before now)."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms!r} (now is {self._now!r})"
            )
        self._seq += 1
        heapq.heappush(self._queue, _Event(time_ms, self._seq, action))

    def run(self, until_ms: float | None = None, max_events: int = 1_000_000) -> float:
        """Process events in time order.

        Stops when the queue drains, when the next event would exceed
        ``until_ms``, or after ``max_events`` (guarding against runaway
        self-scheduling).  Returns the final simulation time.
        """
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if until_ms is not None and self._queue[0].time > until_ms:
                self._now = until_ms
                return self._now
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action()
            executed += 1
            self._processed += 1
        return self._now
