"""Recovery-timeline simulation: how long until programmability is back.

The paper's title promises *predictable* programmability recovery; this
module makes the time dimension explicit.  Starting from the failure
instant, each offline switch goes through the standard OpenFlow control
loop:

1. **detection** — the switch notices its master is gone after an
   echo-timeout (``detection_delay_ms``);
2. **computation** — the recovery algorithm runs once, after the last
   detection (its wall time is taken from the solution, or overridden);
3. **handover** — the new master performs a role-change handshake with
   each mapped switch: one round trip over the switch-controller
   propagation delay ``D_ij``;
4. **installation** — flow-mods for the switch's SDN-mode flows are
   sent sequentially: per rule, one-way propagation + switch processing
   (+ the FlowVisor middle-layer processing for flow-level solutions,
   the paper's reliability argument against PG).

A flow's programmability is restored when *all* of its served SDN pairs
are installed; the report aggregates per-flow restoration times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.simulation.engine import Simulator
from repro.types import FlowId, Milliseconds, NodeId

__all__ = ["TimelineParameters", "TimelineReport", "simulate_recovery_timeline"]


@dataclass(frozen=True)
class TimelineParameters:
    """Timing constants of the control loop (all milliseconds)."""

    #: Echo timeout before a switch declares its master dead.
    detection_delay_ms: Milliseconds = 100.0
    #: Switch-side processing per flow-mod.
    rule_install_ms: Milliseconds = 0.1
    #: Controller-side processing per flow-mod.
    controller_processing_ms: Milliseconds = 0.05
    #: Extra per-request processing of a middle layer (PG's FlowVisor).
    middle_layer_ms: Milliseconds = 0.0
    #: Override the recovery algorithm's measured wall time (None = use it).
    computation_ms: Milliseconds | None = None

    def __post_init__(self) -> None:
        for name in (
            "detection_delay_ms",
            "rule_install_ms",
            "controller_processing_ms",
            "middle_layer_ms",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be >= 0")


@dataclass
class TimelineReport:
    """Outcome of a recovery-timeline simulation (times in ms)."""

    #: Absolute time each mapped switch finished its master handover.
    switch_online_ms: dict[NodeId, Milliseconds] = field(default_factory=dict)
    #: Absolute time each recovered flow regained full programmability.
    flow_recovered_ms: dict[FlowId, Milliseconds] = field(default_factory=dict)
    #: When the recovery computation finished.
    computation_done_ms: Milliseconds = 0.0
    #: When the last flow-mod was installed.
    completed_ms: Milliseconds = 0.0

    @property
    def mean_flow_recovery_ms(self) -> float:
        """Mean per-flow programmability restoration time."""
        if not self.flow_recovered_ms:
            return 0.0
        return float(np.mean(list(self.flow_recovered_ms.values())))

    @property
    def p95_flow_recovery_ms(self) -> float:
        """95th percentile restoration time (the predictability metric)."""
        if not self.flow_recovered_ms:
            return 0.0
        return float(np.percentile(list(self.flow_recovered_ms.values()), 95))

    @property
    def max_flow_recovery_ms(self) -> float:
        """Worst-case restoration time."""
        if not self.flow_recovered_ms:
            return 0.0
        return float(max(self.flow_recovered_ms.values()))


def simulate_recovery_timeline(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    parameters: TimelineParameters | None = None,
) -> TimelineReport:
    """Simulate the control loop that installs ``solution``.

    Per serving controller, installations are sequential (a controller is
    a single queue, matching the paper's control-resource model);
    different controllers proceed in parallel.  Returns the per-flow and
    aggregate restoration times.
    """
    if not solution.feasible:
        raise ReproError("cannot simulate an infeasible solution")
    parameters = parameters or TimelineParameters()
    simulator = Simulator()
    report = TimelineReport()

    computation = (
        parameters.computation_ms
        if parameters.computation_ms is not None
        else 1000.0 * solution.solve_time_s
    )
    computation_done = parameters.detection_delay_ms + computation
    report.computation_done_ms = computation_done

    # Per-controller work queues: handovers first, then rule installs.
    pairs_by_controller: dict[int, list[tuple[NodeId, FlowId]]] = {}
    for switch, flow_id in solution.active_pairs():
        controller = solution.controller_for_pair(switch, flow_id)
        pairs_by_controller.setdefault(controller, []).append((switch, flow_id))
    switches_by_controller: dict[int, list[NodeId]] = {}
    for switch, controller in solution.mapping.items():
        switches_by_controller.setdefault(controller, []).append(switch)

    # Track outstanding installs per flow to detect completion.
    remaining: dict[FlowId, int] = {}
    for _, flow_id in solution.active_pairs():
        remaining[flow_id] = remaining.get(flow_id, 0) + 1

    def controller_work(controller: int) -> None:
        # Executed at computation_done: replay this controller's queue
        # deterministically and record completion times.
        time = computation_done
        for switch in sorted(switches_by_controller.get(controller, [])):
            # Role-change handshake: one round trip.
            time += 2.0 * instance.delay[(switch, controller)]
            report.switch_online_ms[switch] = time
        for switch, flow_id in sorted(pairs_by_controller.get(controller, [])):
            time += (
                parameters.controller_processing_ms
                + parameters.middle_layer_ms
                + instance.delay[(switch, controller)]
                + parameters.rule_install_ms
            )
            remaining[flow_id] -= 1
            if remaining[flow_id] == 0:
                report.flow_recovered_ms[flow_id] = time
            report.completed_ms = max(report.completed_ms, time)

    controllers = set(pairs_by_controller) | set(switches_by_controller)
    for controller in controllers:
        simulator.schedule_at(
            computation_done, lambda c=controller: controller_work(c)
        )
    simulator.run()
    report.completed_ms = max(report.completed_ms, computation_done)
    return report
