"""Geographic primitives: coordinates, great-circle distance, delays.

The paper computes controller-switch propagation delays from node
latitude/longitude using the Haversine formula and a propagation speed of
``2e8 m/s`` (Section VI-A).  This package provides those primitives.
"""

from repro.geo.coordinates import GeoPoint
from repro.geo.haversine import (
    EARTH_RADIUS_M,
    haversine_m,
    pairwise_distance_matrix,
    propagation_delay_ms,
)

__all__ = [
    "GeoPoint",
    "EARTH_RADIUS_M",
    "haversine_m",
    "pairwise_distance_matrix",
    "propagation_delay_ms",
]
