"""Latitude/longitude value object with validation."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GeoPoint"]


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes
    ----------
    latitude:
        Degrees north of the equator, in ``[-90, 90]``.
    longitude:
        Degrees east of the prime meridian, in ``[-180, 180]``.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.latitude <= 90.0):
            raise ValueError(f"latitude out of range [-90, 90]: {self.latitude!r}")
        if not (-180.0 <= self.longitude <= 180.0):
            raise ValueError(f"longitude out of range [-180, 180]: {self.longitude!r}")
        if math.isnan(self.latitude) or math.isnan(self.longitude):
            raise ValueError("coordinates must not be NaN")

    @property
    def latitude_rad(self) -> float:
        """Latitude in radians."""
        return math.radians(self.latitude)

    @property
    def longitude_rad(self) -> float:
        """Longitude in radians."""
        return math.radians(self.longitude)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)`` in degrees."""
        return (self.latitude, self.longitude)
