"""Great-circle distance (Haversine) and propagation delay.

The paper (Section VI-A) derives the propagation delay between two nodes as
the Haversine distance between their coordinates divided by a propagation
speed of :data:`~repro.types.PROPAGATION_SPEED_M_PER_S` (``2e8 m/s``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.geo.coordinates import GeoPoint
from repro.types import MS_PER_S, PROPAGATION_SPEED_M_PER_S

__all__ = [
    "EARTH_RADIUS_M",
    "haversine_m",
    "propagation_delay_ms",
    "pairwise_distance_matrix",
]

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M: float = 6_371_000.0


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in metres.

    Uses the numerically stable Haversine formulation (Robusto, 1957 —
    reference [19] of the paper).

    >>> ny = GeoPoint(40.7128, -74.0060)
    >>> la = GeoPoint(34.0522, -118.2437)
    >>> 3.9e6 < haversine_m(ny, la) < 4.0e6
    True
    """
    phi1, phi2 = a.latitude_rad, b.latitude_rad
    dphi = phi2 - phi1
    dlam = b.longitude_rad - a.longitude_rad
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    # Clamp for floating-point safety before the asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def propagation_delay_ms(
    a: GeoPoint,
    b: GeoPoint,
    speed_m_per_s: float = PROPAGATION_SPEED_M_PER_S,
) -> float:
    """One-way propagation delay between two points, in milliseconds."""
    if speed_m_per_s <= 0:
        raise ValueError(f"propagation speed must be positive: {speed_m_per_s!r}")
    return haversine_m(a, b) / speed_m_per_s * MS_PER_S


def pairwise_distance_matrix(points: Sequence[GeoPoint]) -> np.ndarray:
    """Symmetric matrix of Haversine distances (metres) between points.

    Vectorized over numpy for use on larger topologies; ``result[i, j]`` is
    the distance between ``points[i]`` and ``points[j]``.
    """
    n = len(points)
    lat = np.radians(np.array([p.latitude for p in points], dtype=float))
    lon = np.radians(np.array([p.longitude for p in points], dtype=float))
    dphi = lat[:, None] - lat[None, :]
    dlam = lon[:, None] - lon[None, :]
    h = np.sin(dphi / 2.0) ** 2 + np.cos(lat)[:, None] * np.cos(lat)[None, :] * np.sin(dlam / 2.0) ** 2
    h = np.clip(h, 0.0, 1.0)
    out = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))
    # Exact zeros on the diagonal regardless of rounding.
    np.fill_diagonal(out, 0.0)
    assert out.shape == (n, n)
    return out
