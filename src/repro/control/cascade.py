"""Cascading controller failure analysis.

The paper motivates capacity-aware recovery with the cascading-failure
risk (Yao et al., ICNP'13 — its reference [8]): remapping offline load
onto a controller beyond its capacity can take that controller down too,
shedding even more load onto the survivors.  This module simulates that
process for a proposed load assignment and is used to show that PM's
capacity-respecting mappings never trigger a cascade while naive
over-assignment can melt the whole control plane.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.control.plane import ControlPlane
from repro.exceptions import ControlPlaneError
from repro.types import ControllerId

__all__ = ["CascadeResult", "simulate_cascade"]


@dataclass
class CascadeResult:
    """Outcome of a cascading-failure simulation.

    Attributes
    ----------
    rounds:
        Controllers that failed in each round, in order.  Empty when the
        assignment is safe.
    survivors:
        Controllers still active at the fixed point.
    shed_load:
        Load units whose controller failed and that found no survivor
        with room (unserved at the fixed point).
    """

    rounds: list[tuple[ControllerId, ...]] = field(default_factory=list)
    survivors: tuple[ControllerId, ...] = ()
    shed_load: int = 0

    @property
    def cascaded(self) -> bool:
        """Whether at least one additional controller failed."""
        return bool(self.rounds)

    @property
    def total_failed(self) -> int:
        """Number of controllers lost to the cascade."""
        return sum(len(round_) for round_ in self.rounds)


def simulate_cascade(
    plane: ControlPlane,
    baseline_load: Mapping[ControllerId, int],
    extra_load: Mapping[ControllerId, int],
    initially_failed: frozenset[ControllerId] = frozenset(),
) -> CascadeResult:
    """Simulate overload-driven cascading failures.

    Each active controller carries ``baseline_load + extra_load``.  Any
    controller loaded beyond its capacity fails; its *extra* (recovery)
    load is re-shed onto the surviving controller with the most headroom,
    one unit batch at a time, which may overload the next controller.
    The baseline (own-domain) load of a failed controller goes offline
    rather than moving — exactly the situation recovery would then have
    to solve again.

    Returns the fixed point.  This deliberately models the pessimistic
    "naive re-homing" policy; a capacity-aware algorithm (PM) never
    produces an overloaded assignment, so its cascade is always empty.
    """
    for controller in baseline_load:
        if controller not in set(plane.controller_ids):
            raise ControlPlaneError(f"unknown controller {controller!r}")
    active = {
        c: baseline_load.get(c, 0) + extra_load.get(c, 0)
        for c in plane.controller_ids
        if c not in initially_failed
    }
    recovery_load = {c: extra_load.get(c, 0) for c in active}
    capacity = {c: plane.controller(c).capacity for c in active}

    result = CascadeResult()
    shed = 0
    while True:
        overloaded = tuple(
            sorted(c for c, load in active.items() if load > capacity[c])
        )
        if not overloaded:
            break
        result.rounds.append(overloaded)
        freed = 0
        for controller in overloaded:
            freed += recovery_load[controller]
            del active[controller]
            del recovery_load[controller]
        # Re-shed the failed controllers' recovery load greedily onto the
        # survivor with the most headroom (naive re-homing).
        for _ in range(freed):
            best = None
            best_headroom = 0
            for c, load in active.items():
                headroom = capacity[c] - load
                if headroom > best_headroom:
                    best_headroom = headroom
                    best = c
            if best is None:
                shed += 1
                continue
            active[best] += 1
            recovery_load[best] += 1
    result.survivors = tuple(sorted(active))
    result.shed_load = shed
    return result
