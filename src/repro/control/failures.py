"""Controller failure scenarios.

The paper evaluates all combinations of one, two, and three simultaneous
controller failures out of six (Section VI-C) and notes that controllers
"may fail simultaneously or fail successively"; both are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.control.plane import ControlPlane
from repro.exceptions import ScenarioError
from repro.types import ControllerId, NodeId

__all__ = [
    "FailureScenario",
    "enumerate_failure_scenarios",
    "sample_failure_scenarios",
    "successive_scenarios",
]


@dataclass(frozen=True)
class FailureScenario:
    """A set of simultaneously failed controllers.

    The scenario is independent of any particular control plane until
    resolved against one; :meth:`validate` checks consistency.
    """

    failed: frozenset[ControllerId]

    def __init__(self, failed: frozenset[ControllerId] | tuple[ControllerId, ...] | list[ControllerId]) -> None:
        object.__setattr__(self, "failed", frozenset(failed))
        if not self.failed:
            raise ScenarioError("a failure scenario needs at least one failed controller")

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"(13, 20)"``."""
        inner = ", ".join(str(c) for c in sorted(self.failed))
        return f"({inner})"

    @property
    def n_failures(self) -> int:
        """Number of failed controllers."""
        return len(self.failed)

    def validate(self, plane: ControlPlane) -> None:
        """Check the scenario against a control plane.

        Raises :class:`ScenarioError` for unknown controllers or when no
        controller would remain active.
        """
        known = set(plane.controller_ids)
        unknown = self.failed - known
        if unknown:
            raise ScenarioError(f"unknown failed controllers: {sorted(unknown)}")
        if self.failed >= known:
            raise ScenarioError("at least one controller must remain active")

    def active_controllers(self, plane: ControlPlane) -> tuple[ControllerId, ...]:
        """Sorted ids of controllers that remain active."""
        self.validate(plane)
        return tuple(c for c in plane.controller_ids if c not in self.failed)

    def offline_switches(self, plane: ControlPlane) -> tuple[NodeId, ...]:
        """Sorted switches whose controller failed — the paper's set S."""
        self.validate(plane)
        offline: list[NodeId] = []
        for controller_id in sorted(self.failed):
            offline.extend(plane.domain(controller_id))
        return tuple(sorted(offline))

    def __str__(self) -> str:
        return f"FailureScenario{self.name}"


def enumerate_failure_scenarios(
    plane: ControlPlane, n_failures: int
) -> list[FailureScenario]:
    """All combinations of ``n_failures`` simultaneous failures.

    For the paper's six controllers this yields 6 singles, 15 pairs and
    20 triples.  Scenarios are ordered lexicographically by failed ids.
    """
    ids = plane.controller_ids
    if not (1 <= n_failures < len(ids)):
        raise ScenarioError(
            f"n_failures must be in [1, {len(ids) - 1}]: {n_failures!r}"
        )
    return [FailureScenario(frozenset(c)) for c in combinations(ids, n_failures)]


def sample_failure_scenarios(
    plane: ControlPlane,
    n_failures: int,
    n_samples: int,
    seed: int = 0,
) -> list[FailureScenario]:
    """Sample distinct failure combinations uniformly without replacement.

    For control planes with many controllers, exhaustive enumeration
    (C(M, k) combinations) is too large; scalability studies sample
    instead.  ``n_samples`` is capped at the number of combinations.
    """
    import math
    import random

    ids = plane.controller_ids
    if not (1 <= n_failures < len(ids)):
        raise ScenarioError(
            f"n_failures must be in [1, {len(ids) - 1}]: {n_failures!r}"
        )
    if n_samples < 1:
        raise ScenarioError(f"n_samples must be positive: {n_samples!r}")
    total = math.comb(len(ids), n_failures)
    if n_samples >= total:
        return enumerate_failure_scenarios(plane, n_failures)
    rng = random.Random(seed)
    seen: set[frozenset[ControllerId]] = set()
    while len(seen) < n_samples:
        seen.add(frozenset(rng.sample(ids, n_failures)))
    return [FailureScenario(failed) for failed in sorted(seen, key=sorted)]


def successive_scenarios(
    order: list[ControllerId] | tuple[ControllerId, ...],
) -> Iterator[FailureScenario]:
    """Scenarios for controllers failing one after another.

    Yields the growing failure set after each successive failure:
    ``[5, 13]`` yields ``(5)`` then ``(5, 13)``.  Recovery is recomputed
    from scratch at each stage, matching the paper's model where each
    failure state is solved independently.
    """
    if len(set(order)) != len(order):
        raise ScenarioError(f"duplicate controller in failure order: {list(order)}")
    failed: set[ControllerId] = set()
    for controller_id in order:
        failed.add(controller_id)
        yield FailureScenario(frozenset(failed))
