"""Switch-controller propagation delays and the ideal recovery delay G.

``D_ij`` is the propagation delay between offline switch ``s_i`` and
active controller ``C_j``.  The paper derives delays from Haversine
distance over fibre speed (Section VI-A); we default to that *geodesic*
interpretation and also offer a *routed* variant (delay of the shortest
path through the topology), which is never shorter.

``G`` (Eq. 6) is the total delay of the ideal recovery: every offline
switch talks to its nearest active controller for all of its flows.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import networkx as nx

from repro.exceptions import ControlPlaneError
from repro.topology.graph import Topology
from repro.types import ControllerId, NodeId

__all__ = ["DelayModel", "ideal_recovery_delay"]


class DelayModel:
    """Computes switch→controller-site propagation delays.

    Parameters
    ----------
    topology:
        Provides coordinates and links.
    mode:
        ``"geodesic"`` (paper default) — straight-line Haversine delay;
        ``"routed"`` — delay of the minimum-delay path over the links.
    """

    _MODES = ("geodesic", "routed")

    def __init__(self, topology: Topology, mode: str = "geodesic") -> None:
        if mode not in self._MODES:
            raise ControlPlaneError(f"unknown delay mode {mode!r}; use one of {self._MODES}")
        self._topology = topology
        self._mode = mode
        self._routed_cache: dict[NodeId, dict[NodeId, float]] = {}
        self._geo_cache: dict[tuple[NodeId, NodeId], float] = {}

    @property
    def mode(self) -> str:
        """The delay interpretation in use."""
        return self._mode

    def __getstate__(self) -> dict:
        """Drop the memo caches when pickling (workers rebuild on demand)."""
        state = self.__dict__.copy()
        state["_routed_cache"] = {}
        state["_geo_cache"] = {}
        return state

    def delay_ms(self, switch: NodeId, site: NodeId) -> float:
        """One-way delay between a switch and a controller site, in ms."""
        if switch not in self._topology or site not in self._topology:
            raise ControlPlaneError(f"unknown node: {switch!r} or {site!r}")
        if switch == site:
            return 0.0
        if self._mode == "geodesic":
            key = (switch, site)
            cached = self._geo_cache.get(key)
            if cached is None:
                cached = self._topology.geo_delay_ms(switch, site)
                self._geo_cache[key] = cached
            return cached
        if site not in self._routed_cache:
            self._routed_cache[site] = dict(
                nx.single_source_dijkstra_path_length(
                    self._topology.graph, site, weight="delay_ms"
                )
            )
        return self._routed_cache[site][switch]

    def matrix(
        self,
        switches: Sequence[NodeId],
        sites: Mapping[ControllerId, NodeId],
    ) -> dict[tuple[NodeId, ControllerId], float]:
        """Dense ``D_ij`` for offline switches × active controllers."""
        return {
            (switch, controller_id): self.delay_ms(switch, site)
            for switch in switches
            for controller_id, site in sites.items()
        }

    def nearest_controller(
        self,
        switch: NodeId,
        sites: Mapping[ControllerId, NodeId],
    ) -> ControllerId:
        """Active controller with the smallest delay to ``switch``.

        Ties break toward the lower controller id for determinism — this
        is the paper's ``alpha_ij`` indicator.
        """
        if not sites:
            raise ControlPlaneError("no active controllers given")
        return min(sites, key=lambda c: (self.delay_ms(switch, sites[c]), c))


def ideal_recovery_delay(
    delay_model: DelayModel,
    switches: Sequence[NodeId],
    sites: Mapping[ControllerId, NodeId],
    gamma: Mapping[NodeId, int],
) -> float:
    """The paper's ``G`` (Eq. 6): total delay of nearest-controller recovery.

    ``G = sum_i gamma_i * D_{i, nearest(i)}`` — every offline switch is
    mapped to its nearest active controller and all of its ``gamma_i``
    flows incur that switch-controller delay.
    """
    total = 0.0
    for switch in switches:
        nearest = delay_model.nearest_controller(switch, sites)
        count = gamma.get(switch, 0)
        if count < 0:
            raise ControlPlaneError(f"gamma[{switch!r}] must be >= 0: {count!r}")
        total += count * delay_model.delay_ms(switch, sites[nearest])
    return total
