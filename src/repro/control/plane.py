"""The SD-WAN control plane: controllers, domains, and baseline loads.

A :class:`ControlPlane` binds a topology to a set of controllers, each
owning a domain of switches.  It computes each controller's *baseline
load* (the flows in its own domain, the paper's Table III row) and thus
the spare control resource ``A_j^rest`` available for recovery when other
controllers fail.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.control.controller import Controller
from repro.exceptions import CapacityError, ControlPlaneError
from repro.flows.flow import Flow
from repro.flows.paths import switch_flow_counts
from repro.topology.graph import Topology
from repro.topology.partition import validate_partition
from repro.types import ControllerId, NodeId

__all__ = ["ControlPlane"]


class ControlPlane:
    """Topology + controllers + domain partition + workload loads.

    Parameters
    ----------
    topology:
        The data-plane topology.
    domains:
        Mapping from controller id to the switches in its domain; must
        partition the topology's nodes.  Controller sites default to the
        node with the same id as the controller (the paper's convention);
        pass ``sites`` to override.
    capacity:
        Either one integer applied to every controller (the paper uses
        500) or a per-controller mapping.
    sites:
        Optional controller id → site node id.
    """

    def __init__(
        self,
        topology: Topology,
        domains: Mapping[ControllerId, Sequence[NodeId]],
        capacity: int | Mapping[ControllerId, int],
        sites: Mapping[ControllerId, NodeId] | None = None,
    ) -> None:
        validate_partition(topology, domains)
        self._topology = topology
        self._domains: dict[ControllerId, tuple[NodeId, ...]] = {
            c: tuple(sorted(members)) for c, members in domains.items()
        }
        self._controller_of: dict[NodeId, ControllerId] = {}
        for controller_id, members in self._domains.items():
            for switch in members:
                self._controller_of[switch] = controller_id

        self._controllers: dict[ControllerId, Controller] = {}
        for controller_id in sorted(self._domains):
            if isinstance(capacity, Mapping):
                try:
                    cap = capacity[controller_id]
                except KeyError:
                    raise ControlPlaneError(
                        f"no capacity given for controller {controller_id!r}"
                    ) from None
            else:
                cap = capacity
            site = controller_id if sites is None else sites.get(controller_id, controller_id)
            if site not in topology:
                raise ControlPlaneError(
                    f"controller {controller_id!r} site {site!r} is not a topology node"
                )
            self._controllers[controller_id] = Controller(
                controller_id=controller_id, site=site, capacity=int(cap)
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The data-plane topology."""
        return self._topology

    @property
    def controller_ids(self) -> tuple[ControllerId, ...]:
        """Controller ids in sorted order."""
        return tuple(sorted(self._controllers))

    def controller(self, controller_id: ControllerId) -> Controller:
        """Look up a controller by id."""
        try:
            return self._controllers[controller_id]
        except KeyError:
            raise ControlPlaneError(f"unknown controller {controller_id!r}") from None

    def domain(self, controller_id: ControllerId) -> tuple[NodeId, ...]:
        """Switches in the controller's domain, sorted."""
        if controller_id not in self._domains:
            raise ControlPlaneError(f"unknown controller {controller_id!r}")
        return self._domains[controller_id]

    def controller_of(self, switch: NodeId) -> ControllerId:
        """The controller owning ``switch``."""
        try:
            return self._controller_of[switch]
        except KeyError:
            raise ControlPlaneError(f"unknown switch {switch!r}") from None

    @property
    def n_controllers(self) -> int:
        """Number of controllers."""
        return len(self._controllers)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def domain_loads(self, flows: Iterable[Flow]) -> dict[ControllerId, int]:
        """Baseline control load per controller: flows in its own switches.

        A flow consumes one unit at every switch on its path (destination
        included), so a controller's load is the sum of its switches'
        ``gamma`` values — the Table III quantities.
        """
        gamma = switch_flow_counts(flows)
        return {
            controller_id: sum(gamma[s] for s in members)
            for controller_id, members in self._domains.items()
        }

    def spare_capacity(
        self, flows: Iterable[Flow], strict: bool = True
    ) -> dict[ControllerId, int]:
        """Spare control resource ``A_j^rest`` per controller.

        With ``strict=True`` a controller whose baseline load already
        exceeds its capacity raises :class:`CapacityError` (the network
        was mis-provisioned); otherwise the spare clamps at zero.
        """
        loads = self.domain_loads(flows)
        spare: dict[ControllerId, int] = {}
        for controller_id, load in loads.items():
            cap = self._controllers[controller_id].capacity
            if load > cap:
                if strict:
                    raise CapacityError(
                        f"controller {controller_id!r} baseline load {load} exceeds "
                        f"capacity {cap}; the scenario is mis-provisioned"
                    )
                spare[controller_id] = 0
            else:
                spare[controller_id] = cap - load
        return spare

    def __repr__(self) -> str:
        return (
            f"ControlPlane(controllers={list(self.controller_ids)}, "
            f"switches={self._topology.n_nodes})"
        )
