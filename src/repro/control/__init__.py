"""Control plane: controllers, domains, failures, and delays."""

from repro.control.cascade import CascadeResult, simulate_cascade
from repro.control.controller import Controller, ControllerState
from repro.control.delay import DelayModel, ideal_recovery_delay
from repro.control.failures import (
    FailureScenario,
    enumerate_failure_scenarios,
    sample_failure_scenarios,
    successive_scenarios,
)
from repro.control.plane import ControlPlane

__all__ = [
    "CascadeResult",
    "simulate_cascade",
    "Controller",
    "ControllerState",
    "ControlPlane",
    "FailureScenario",
    "enumerate_failure_scenarios",
    "sample_failure_scenarios",
    "successive_scenarios",
    "DelayModel",
    "ideal_recovery_delay",
]
