"""Controller model: identity, placement, capacity, and load accounting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CapacityError, ControlPlaneError
from repro.types import ControllerId, NodeId

__all__ = ["Controller", "ControllerState"]


@dataclass(frozen=True, slots=True)
class Controller:
    """Static description of one SDN controller.

    Attributes
    ----------
    controller_id:
        Identifier; by the paper's convention this equals the node id the
        controller is co-located with.
    site:
        Node id where the controller is physically placed (used for
        switch-controller propagation delays).
    capacity:
        Total control resource — "the number of flows that the controller
        can normally control without introducing extra delays"
        (Section IV-B2).  The paper uses 500.
    """

    controller_id: ControllerId
    site: NodeId
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ControlPlaneError(
                f"controller {self.controller_id!r} capacity must be >= 0: "
                f"{self.capacity!r}"
            )


class ControllerState:
    """Mutable runtime state of a controller: load and liveness.

    Load is counted in control-resource units (one unit per controlled
    flow-at-switch).  ``available`` is the paper's ``A_j^rest``.
    """

    def __init__(self, controller: Controller, load: int = 0, failed: bool = False) -> None:
        if load < 0:
            raise ControlPlaneError(f"load must be >= 0: {load!r}")
        if load > controller.capacity:
            raise CapacityError(
                f"initial load {load} exceeds capacity {controller.capacity} "
                f"of controller {controller.controller_id!r}"
            )
        self._controller = controller
        self._load = load
        self._failed = failed

    @property
    def controller(self) -> Controller:
        """The static controller description."""
        return self._controller

    @property
    def controller_id(self) -> ControllerId:
        """Shorthand for ``controller.controller_id``."""
        return self._controller.controller_id

    @property
    def load(self) -> int:
        """Currently consumed control resource."""
        return self._load

    @property
    def available(self) -> int:
        """Remaining control resource ``A_j^rest``; 0 when failed."""
        if self._failed:
            return 0
        return self._controller.capacity - self._load

    @property
    def failed(self) -> bool:
        """Whether the controller is down."""
        return self._failed

    def fail(self) -> None:
        """Mark the controller as failed."""
        self._failed = True

    def recover(self) -> None:
        """Bring the controller back online (load is preserved)."""
        self._failed = False

    def consume(self, units: int = 1) -> None:
        """Allocate ``units`` of control resource.

        Raises :class:`CapacityError` when the budget would be exceeded
        and :class:`ControlPlaneError` when the controller is failed.
        """
        if units < 0:
            raise ControlPlaneError(f"units must be >= 0: {units!r}")
        if self._failed:
            raise ControlPlaneError(
                f"controller {self.controller_id!r} is failed; cannot consume"
            )
        if units > self.available:
            raise CapacityError(
                f"controller {self.controller_id!r} has {self.available} units "
                f"available, requested {units}"
            )
        self._load += units

    def release(self, units: int = 1) -> None:
        """Return ``units`` of control resource."""
        if units < 0:
            raise ControlPlaneError(f"units must be >= 0: {units!r}")
        if units > self._load:
            raise ControlPlaneError(
                f"cannot release {units} units; only {self._load} consumed"
            )
        self._load -= units

    def __repr__(self) -> str:
        status = "failed" if self._failed else "active"
        return (
            f"ControllerState(id={self.controller_id}, load={self._load}/"
            f"{self._controller.capacity}, {status})"
        )
