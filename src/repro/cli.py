"""Command-line interface: ``repro-pm`` / ``python -m repro``.

Subcommands regenerate the paper's artifacts from the terminal::

    repro-pm table3                      # Table III
    repro-pm fig --failures 2            # Fig. 5 data as text tables
    repro-pm fig7                        # computation-time comparison
    repro-pm run --failed 13,20          # one scenario, all algorithms
    repro-pm info                        # setup summary
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.control.failures import FailureScenario
from repro.experiments.figures import failure_figure_data, fig7_data, headline_ratios
from repro.experiments.report import render_fig7, render_figure, render_table, render_table3
from repro.experiments.runner import PAPER_ALGORITHMS, run_scenario
from repro.experiments.scenarios import default_att_context
from repro.experiments.tables import table3_data

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-pm",
        description="ProgrammabilityMedic (ICDCS 2021) reproduction CLI",
    )
    parser.add_argument(
        "--capacity", type=int, default=500,
        help="controller processing ability (paper: 500)",
    )
    parser.add_argument(
        "--counter", choices=("lfa", "bounded", "dag"), default="lfa",
        help="path-programmability counting strategy",
    )
    parser.add_argument(
        "--optimal-time-limit", type=float, default=120.0,
        help="seconds before Optimal gives up on a case",
    )
    parser.add_argument(
        "--lp-batch", type=int, default=None, metavar="K",
        help=(
            "stack up to K same-shaped exact solves into one "
            "block-diagonal LP per HiGHS call (fig/fig7/export sweeps; "
            "bit-identical results, see docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "directory of a cross-run solve store: sweeps memoize their "
            "solves there and replay them bit-identically on later runs "
            "(fig/fig7/export commands)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="summarize the default evaluation setup")
    sub.add_parser("table3", help="regenerate Table III")

    fig = sub.add_parser("fig", help="regenerate Fig. 4/5/6 data")
    fig.add_argument("--failures", type=int, choices=(1, 2, 3), required=True)
    fig.add_argument(
        "--algorithms", default=",".join(PAPER_ALGORITHMS),
        help="comma-separated algorithm names",
    )

    sub.add_parser("fig7", help="regenerate Fig. 7 (computation time)")

    run = sub.add_parser("run", help="run one failure scenario")
    run.add_argument("--failed", required=True, help="comma-separated controller ids")
    run.add_argument(
        "--algorithms", default=",".join(PAPER_ALGORITHMS),
        help="comma-separated algorithm names",
    )

    export = sub.add_parser(
        "export", help="write Fig. 4/5/6 data to a JSON or CSV file"
    )
    export.add_argument("--failures", type=int, choices=(1, 2, 3), required=True)
    export.add_argument("--out", required=True, help="output path (.json or .csv)")
    export.add_argument(
        "--algorithms", default=",".join(PAPER_ALGORITHMS),
        help="comma-separated algorithm names",
    )

    timeline = sub.add_parser(
        "timeline", help="simulate the recovery timeline for one scenario"
    )
    timeline.add_argument("--failed", required=True, help="comma-separated controller ids")
    timeline.add_argument(
        "--algorithms", default="retroflow,pg,pm",
        help="comma-separated algorithm names (no 'optimal')",
    )
    timeline.add_argument(
        "--detection-ms", type=float, default=100.0,
        help="failure-detection (echo timeout) delay in ms",
    )

    successive = sub.add_parser(
        "successive", help="fail controllers one at a time and re-solve"
    )
    successive.add_argument(
        "--order", required=True, help="comma-separated controller ids in failure order"
    )
    successive.add_argument("--algorithm", default="pm")
    return parser


def _context(args: argparse.Namespace):
    return default_att_context(capacity=args.capacity, counter_strategy=args.counter)


def _store(args: argparse.Namespace):
    if not getattr(args, "store", None):
        return None
    from repro.perf.store import SolveStore

    return SolveStore(args.store)


def _cmd_info(args: argparse.Namespace) -> int:
    context = _context(args)
    topo = context.topology
    loads = context.plane.domain_loads(context.flows)
    spare = context.plane.spare_capacity(context.flows)
    print(f"topology: {topo.name} ({topo.n_nodes} nodes, {topo.n_directed_links} directed links)")
    print(f"flows: {len(context.flows)} (all ordered pairs, hop-count shortest paths)")
    print(f"controllers: {list(context.plane.controller_ids)} at capacity {args.capacity}")
    print(f"domain loads: {loads}")
    print(f"spare capacity: {spare}")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    print(render_table3(table3_data(_context(args))))
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    data = failure_figure_data(
        _context(args),
        args.failures,
        algorithms,
        optimal_time_limit_s=args.optimal_time_limit,
        store=_store(args),
        lp_batch=args.lp_batch,
    )
    print(render_figure(data))
    ratios = headline_ratios(data)
    if ratios["max_pct"] is not None:
        print(
            f"\nPM total programmability vs RetroFlow: "
            f"{ratios['min_pct']:.0f}%..{ratios['max_pct']:.0f}% "
            f"(max at case {ratios['argmax_case']})"
        )
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    print(
        render_fig7(
            fig7_data(
                _context(args),
                optimal_time_limit_s=args.optimal_time_limit,
                store=_store(args),
                lp_batch=args.lp_batch,
            )
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    failed = frozenset(int(c.strip()) for c in args.failed.split(",") if c.strip())
    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    context = _context(args)
    result = run_scenario(
        context,
        FailureScenario(failed),
        algorithms,
        optimal_time_limit_s=args.optimal_time_limit,
    )
    rows = []
    for name in algorithms:
        ev = result.evaluations[name]
        if not ev.feasible:
            rows.append((name, "n/a", "n/a", "n/a", "n/a", f"{ev.solve_time_s:.3f}s"))
            continue
        rows.append(
            (
                name,
                ev.least_programmability,
                ev.total_programmability,
                f"{100 * ev.recovery_fraction:.1f}%",
                f"{ev.per_flow_overhead_ms:.3f}ms",
                f"{ev.solve_time_s:.3f}s",
            )
        )
    print(f"scenario {result.name}")
    print(
        render_table(
            ("algorithm", "least pro", "total pro", "recovered", "overhead", "time"),
            rows,
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io import write_csv, write_json

    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    data = failure_figure_data(
        _context(args),
        args.failures,
        algorithms,
        optimal_time_limit_s=args.optimal_time_limit,
        store=_store(args),
        lp_batch=args.lp_batch,
    )
    if args.out.endswith(".csv"):
        write_csv(args.out, data)
    elif args.out.endswith(".json"):
        write_json(args.out, data)
    else:
        print(f"error: --out must end in .json or .csv: {args.out!r}", file=sys.stderr)
        return 2
    print(f"wrote {args.out}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.baselines import get_algorithm
    from repro.simulation import TimelineParameters, simulate_recovery_timeline
    from repro.types import FLOWVISOR_PROCESSING_MS

    failed = frozenset(int(c.strip()) for c in args.failed.split(",") if c.strip())
    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    context = _context(args)
    instance = context.instance(FailureScenario(failed))
    rows = []
    for name in algorithms:
        solution = get_algorithm(name)(instance)
        parameters = TimelineParameters(
            detection_delay_ms=args.detection_ms,
            middle_layer_ms=FLOWVISOR_PROCESSING_MS if name == "pg" else 0.0,
        )
        report = simulate_recovery_timeline(instance, solution, parameters)
        rows.append(
            (
                name,
                len(report.flow_recovered_ms),
                f"{report.computation_done_ms:.1f}",
                f"{report.mean_flow_recovery_ms:.0f}",
                f"{report.p95_flow_recovery_ms:.0f}",
                f"{report.completed_ms:.0f}",
            )
        )
    print(f"recovery timeline after failure {FailureScenario(failed).name} (ms)")
    print(
        render_table(
            ("algorithm", "flows", "compute done", "mean", "p95", "all done"), rows
        )
    )
    return 0


def _cmd_successive(args: argparse.Namespace) -> int:
    from repro.experiments.successive import run_successive

    order = [int(c.strip()) for c in args.order.split(",") if c.strip()]
    context = _context(args)
    stages = run_successive(context, order, algorithm=args.algorithm)
    rows = []
    for stage in stages:
        rows.append(
            (
                "(" + ", ".join(str(c) for c in stage.failed) + ")",
                stage.total_spare,
                stage.recoverable_flows,
                stage.evaluation.least_programmability,
                f"{100 * stage.evaluation.recovery_fraction:.1f}%",
                f"{stage.fairness:.3f}",
            )
        )
    print(f"successive failures, algorithm {args.algorithm!r}")
    print(
        render_table(
            ("failed", "spare", "recoverable", "least r", "recovered", "fairness"),
            rows,
        )
    )
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "table3": _cmd_table3,
    "fig": _cmd_fig,
    "fig7": _cmd_fig7,
    "run": _cmd_run,
    "export": _cmd_export,
    "timeline": _cmd_timeline,
    "successive": _cmd_successive,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
