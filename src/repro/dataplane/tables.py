"""Forwarding tables of the hybrid switch (Fig. 2 of the paper).

A hybrid switch holds two tables:

* a high-priority OpenFlow *flow table* matched per flow ``(src, dst)``;
* a low-priority *legacy routing table* matched per destination (OSPF).

The flow table carries an implicit lowest-priority table-miss entry that
punts unmatched packets to the legacy table — exactly the configuration
the paper describes for the Brocade MLX-8 PE hybrid mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataPlaneError
from repro.routing.ospf import LegacyRoutingTable
from repro.types import FlowId, NodeId

__all__ = ["FlowEntry", "FlowTable", "LegacyRoutingTable"]

DEFAULT_FLOW_PRIORITY = 10


@dataclass(frozen=True, slots=True)
class FlowEntry:
    """An OpenFlow rule: exact match on the flow, forward to a next hop."""

    flow_id: FlowId
    next_hop: NodeId
    priority: int = DEFAULT_FLOW_PRIORITY

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise DataPlaneError(
                f"flow entry priority must be positive (0 is the table-miss "
                f"entry): {self.priority!r}"
            )


class FlowTable:
    """Per-switch OpenFlow table with highest-priority-wins matching."""

    def __init__(self, switch: NodeId) -> None:
        self._switch = switch
        self._entries: dict[FlowId, FlowEntry] = {}

    @property
    def switch(self) -> NodeId:
        """The switch this table belongs to."""
        return self._switch

    def install(self, entry: FlowEntry) -> None:
        """Install (or replace, if higher priority) a flow entry.

        Replacing with a lower-priority entry for the same flow raises —
        a real switch would keep both and match the higher one, which for
        exact-match rules is equivalent to rejecting the downgrade.
        """
        existing = self._entries.get(entry.flow_id)
        if existing is not None and existing.priority > entry.priority:
            raise DataPlaneError(
                f"switch {self._switch!r} already has a higher-priority entry "
                f"for flow {entry.flow_id!r}"
            )
        self._entries[entry.flow_id] = entry

    def remove(self, flow_id: FlowId) -> None:
        """Remove the entry for ``flow_id`` (missing entry is an error)."""
        try:
            del self._entries[flow_id]
        except KeyError:
            raise DataPlaneError(
                f"switch {self._switch!r} has no entry for flow {flow_id!r}"
            ) from None

    def lookup(self, flow_id: FlowId) -> FlowEntry | None:
        """Match a packet's flow; ``None`` means table miss."""
        return self._entries.get(flow_id)

    def entries(self) -> tuple[FlowEntry, ...]:
        """All installed entries, sorted by flow id."""
        return tuple(self._entries[k] for k in sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"FlowTable(switch={self._switch}, entries={len(self)})"
