"""Packet model for the data-plane simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataPlaneError
from repro.types import FlowId, NodeId

__all__ = ["Packet"]


@dataclass
class Packet:
    """A packet being forwarded through the network.

    Attributes
    ----------
    src, dst:
        Flow endpoints; the pair identifies the flow the packet belongs
        to (matching the per-flow OpenFlow rules the recovery installs).
    trace:
        Switches visited so far, in order.  Populated by the forwarding
        simulation.
    """

    src: NodeId
    dst: NodeId
    trace: list[NodeId] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise DataPlaneError(f"packet endpoints must differ: {self.src!r}")

    @property
    def flow_id(self) -> FlowId:
        """The ``(src, dst)`` pair identifying the packet's flow."""
        return (self.src, self.dst)

    @property
    def current(self) -> NodeId:
        """Switch currently holding the packet (last trace entry)."""
        if not self.trace:
            raise DataPlaneError("packet has not entered the network yet")
        return self.trace[-1]

    @property
    def delivered(self) -> bool:
        """Whether the packet has reached its destination."""
        return bool(self.trace) and self.trace[-1] == self.dst

    def visit(self, node: NodeId) -> None:
        """Record arrival at ``node``."""
        self.trace.append(node)
