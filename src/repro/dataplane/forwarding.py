"""Network-wide forwarding simulation.

The :class:`NetworkDataPlane` executes recovery outputs: it configures
every switch's mode and tables from a :class:`RecoverySolution` and then
walks packets hop by hop, proving that every offline flow still reaches
its destination (SDN-mode hops via flow entries, legacy hops via OSPF)
and that programmable flows can actually be rerouted at recovered
switches.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchDataPlane, SwitchMode
from repro.dataplane.tables import FlowEntry
from repro.exceptions import DataPlaneError, ForwardingLoopError
from repro.flows.flow import Flow
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.routing.ospf import compute_legacy_tables
from repro.topology.graph import Topology
from repro.types import NodeId, Path

__all__ = ["NetworkDataPlane"]


class NetworkDataPlane:
    """All switches of a topology plus packet-walking simulation.

    Parameters
    ----------
    topology:
        The physical graph (links constrain valid next hops).
    mode:
        Initial mode of every switch; recovery typically starts from
        ``HYBRID``.
    legacy_weight:
        Metric for the OSPF legacy tables — must match the metric used
        to generate the flows' paths for legacy-mode flows to stay on
        their original routes.
    """

    def __init__(
        self,
        topology: Topology,
        mode: SwitchMode = SwitchMode.HYBRID,
        legacy_weight: str = "hops",
    ) -> None:
        self._topology = topology
        legacy = compute_legacy_tables(topology, weight=legacy_weight)
        self._switches: dict[NodeId, SwitchDataPlane] = {
            node: SwitchDataPlane(node, mode, legacy[node]) for node in topology.nodes
        }

    @property
    def topology(self) -> Topology:
        """The underlying topology."""
        return self._topology

    def switch(self, node: NodeId) -> SwitchDataPlane:
        """Access one switch's data plane."""
        try:
            return self._switches[node]
        except KeyError:
            raise DataPlaneError(f"unknown switch {node!r}") from None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def install_flow_path(self, flow: Flow) -> None:
        """Install the flow's path as OpenFlow entries on every transit hop."""
        for node in flow.transit_switches:
            self._switches[node].install_flow(
                FlowEntry(flow_id=flow.flow_id, next_hop=flow.next_hop(node))
            )

    def apply_recovery(
        self,
        instance: FMSSMInstance,
        solution: RecoverySolution,
        flows: Iterable[Flow] | None = None,
    ) -> None:
        """Configure the offline region from a recovery solution.

        Offline switches run in HYBRID mode.  Every SDN-mode pair gets a
        flow entry steering the flow along its original path; everything
        else falls through to the legacy table.  Online switches keep
        whatever configuration they have (callers typically installed all
        original flow paths beforehand).
        """
        offline = set(instance.switches)
        for node in offline:
            self._switches[node].set_mode(SwitchMode.HYBRID)
        flow_lookup = dict(instance.flows)
        if flows is not None:
            for flow in flows:
                flow_lookup.setdefault(flow.flow_id, flow)
        for switch, flow_id in sorted(solution.sdn_pairs):
            flow = flow_lookup.get(flow_id)
            if flow is None:
                raise DataPlaneError(f"no flow object for SDN pair {(switch, flow_id)!r}")
            self._switches[switch].install_flow(
                FlowEntry(flow_id=flow_id, next_hop=flow.next_hop(switch))
            )

    def reroute(self, flow_id: tuple[NodeId, NodeId], at: NodeId, new_next_hop: NodeId) -> None:
        """Reprogram a flow's next hop at a switch (what programmability buys).

        The new next hop must be a physical neighbor.  Only this one entry
        changes; downstream switches still hold whatever entries they had,
        so the controller must ensure the overall forwarding stays
        loop-free (checked by :meth:`forward`).  To change a whole path
        segment atomically, use :meth:`install_path` instead.
        """
        if not self._topology.has_edge(at, new_next_hop):
            raise DataPlaneError(
                f"switch {at!r} has no link to proposed next hop {new_next_hop!r}"
            )
        switch = self.switch(at)
        switch.flow_table.install(FlowEntry(flow_id=flow_id, next_hop=new_next_hop))

    def install_path(self, flow_id: tuple[NodeId, NodeId], path: Path) -> None:
        """Install per-flow entries along ``path`` (a path change).

        This is how a controller actually reroutes a flow: every transit
        node of the new segment gets an entry for the flow, overriding any
        stale entries from the previous path.  The path must follow
        physical links and end at the flow's destination.
        """
        if len(path) < 2:
            raise DataPlaneError(f"path must have at least 2 nodes: {path!r}")
        if path[-1] != flow_id[1]:
            raise DataPlaneError(
                f"path {path!r} does not end at the flow destination {flow_id[1]!r}"
            )
        for u, v in zip(path, path[1:]):
            if not self._topology.has_edge(u, v):
                raise DataPlaneError(f"path uses missing link ({u!r}, {v!r})")
        for u, v in zip(path, path[1:]):
            self._switches[u].flow_table.install(FlowEntry(flow_id=flow_id, next_hop=v))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def forward(self, packet: Packet, start: NodeId | None = None) -> Path:
        """Walk a packet from ``start`` (default: its source) to delivery.

        Returns the visited path.  Raises :class:`ForwardingLoopError` if a
        switch repeats, :class:`TableMissError` if a pipeline has no match,
        and :class:`DataPlaneError` if a switch emits an invalid next hop.
        """
        node = packet.src if start is None else start
        packet.visit(node)
        visited = {node}
        while node != packet.dst:
            next_hop = self._switches[node].next_hop(packet)
            if not self._topology.has_edge(node, next_hop):
                raise DataPlaneError(
                    f"switch {node!r} forwarded to non-neighbor {next_hop!r}"
                )
            if next_hop in visited:
                packet.visit(next_hop)
                raise ForwardingLoopError(
                    f"flow {packet.flow_id!r} looped: {packet.trace}"
                )
            packet.visit(next_hop)
            visited.add(next_hop)
            node = next_hop
        return tuple(packet.trace)

    def check_all_delivered(self, flows: Iterable[Flow]) -> dict[tuple[NodeId, NodeId], Path]:
        """Forward one packet per flow; return the realized paths.

        Raises on the first undeliverable flow — used by integration
        tests to prove a recovery output is actually installable.
        """
        realized: dict[tuple[NodeId, NodeId], Path] = {}
        for flow in flows:
            packet = Packet(src=flow.src, dst=flow.dst)
            realized[flow.flow_id] = self.forward(packet)
        return realized
