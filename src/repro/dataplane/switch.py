"""The per-switch packet pipeline — the three modes of Fig. 2.

``SDN`` consults the flow table only; ``LEGACY`` the legacy routing table
only; ``HYBRID`` tries the flow table first and falls through the
table-miss entry to the legacy table — the configuration PM relies on.
"""

from __future__ import annotations

import enum

from repro.dataplane.packet import Packet
from repro.dataplane.tables import FlowEntry, FlowTable
from repro.exceptions import DataPlaneError, TableMissError
from repro.routing.ospf import LegacyRoutingTable
from repro.types import NodeId

__all__ = ["SwitchMode", "SwitchDataPlane"]


class SwitchMode(enum.Enum):
    """Routing mode of a switch (Fig. 2)."""

    SDN = "sdn"
    LEGACY = "legacy"
    HYBRID = "hybrid"


class SwitchDataPlane:
    """One switch's forwarding state and packet pipeline."""

    def __init__(
        self,
        node: NodeId,
        mode: SwitchMode,
        legacy_table: LegacyRoutingTable | None = None,
    ) -> None:
        if mode in (SwitchMode.LEGACY, SwitchMode.HYBRID) and legacy_table is None:
            raise DataPlaneError(
                f"switch {node!r} in mode {mode.value} needs a legacy table"
            )
        if legacy_table is not None and legacy_table.switch != node:
            raise DataPlaneError(
                f"legacy table of switch {legacy_table.switch!r} given to {node!r}"
            )
        self._node = node
        self._mode = mode
        self._flow_table = FlowTable(node)
        self._legacy_table = legacy_table

    @property
    def node(self) -> NodeId:
        """This switch's node id."""
        return self._node

    @property
    def mode(self) -> SwitchMode:
        """Current routing mode."""
        return self._mode

    @property
    def flow_table(self) -> FlowTable:
        """The OpenFlow table."""
        return self._flow_table

    @property
    def legacy_table(self) -> LegacyRoutingTable | None:
        """The legacy (OSPF) routing table, if configured."""
        return self._legacy_table

    def set_mode(self, mode: SwitchMode) -> None:
        """Reconfigure the routing mode (recovery reconfigures switches)."""
        if mode in (SwitchMode.LEGACY, SwitchMode.HYBRID) and self._legacy_table is None:
            raise DataPlaneError(
                f"switch {self._node!r} has no legacy table for mode {mode.value}"
            )
        self._mode = mode

    def install_flow(self, entry: FlowEntry) -> None:
        """Install an OpenFlow entry (only meaningful in SDN/HYBRID mode)."""
        self._flow_table.install(entry)

    def next_hop(self, packet: Packet) -> NodeId:
        """Run the packet through the pipeline and return the next hop.

        Raises :class:`TableMissError` when no table produces a next hop.
        """
        if self._mode in (SwitchMode.SDN, SwitchMode.HYBRID):
            entry = self._flow_table.lookup(packet.flow_id)
            if entry is not None:
                return entry.next_hop
            if self._mode is SwitchMode.SDN:
                raise TableMissError(
                    f"switch {self._node!r} (SDN mode): no flow entry for "
                    f"{packet.flow_id!r}"
                )
        # LEGACY mode, or HYBRID table-miss fall-through.
        assert self._legacy_table is not None
        return self._legacy_table.next_hop(packet.dst)

    def __repr__(self) -> str:
        return (
            f"SwitchDataPlane(node={self._node}, mode={self._mode.value}, "
            f"flow_entries={len(self._flow_table)})"
        )
