"""Hybrid SDN/legacy data-plane simulator (Fig. 2 of the paper)."""

from repro.dataplane.forwarding import NetworkDataPlane
from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchDataPlane, SwitchMode
from repro.dataplane.tables import FlowEntry, FlowTable

__all__ = [
    "Packet",
    "FlowEntry",
    "FlowTable",
    "SwitchMode",
    "SwitchDataPlane",
    "NetworkDataPlane",
]
