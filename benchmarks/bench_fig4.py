"""Fig. 4 — one controller failure (6 cases, four algorithms).

Regenerates every subfigure series: (a) programmability distribution,
(b) total programmability relative to RetroFlow, (c) % recovered flows,
(d) per-flow communication overhead.  Prints the full report and
benchmarks the PM heuristic on a single-failure instance.
"""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.figures import failure_figure_data
from repro.experiments.report import render_figure
from repro.pm.algorithm import solve_pm


def test_fig4_report(benchmark, context, sweep_1, capsys):
    """Print Fig. 4 and assert its paper shape."""
    data = benchmark.pedantic(
        failure_figure_data, args=(context, 1), kwargs={"results": sweep_1},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_figure(data))
    # Paper: under one failure every algorithm recovers all flows with
    # identical programmability.
    for case in data["cases"]:
        pm = case["algorithms"]["pm"]
        for name, record in case["algorithms"].items():
            assert record["feasible"], name
            assert record["recovered_flows_pct"] == pytest.approx(100.0), name
            assert (
                record["least_programmability"] == pm["least_programmability"]
            ), name


def test_benchmark_pm_single_failure(benchmark, context):
    """Time PM on the (13) single-failure instance."""
    instance = context.instance(FailureScenario(frozenset({13})))
    solution = benchmark(solve_pm, instance)
    assert solution.feasible
