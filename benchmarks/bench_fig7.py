"""Fig. 7 — PM computation time as a percentage of Optimal's.

The paper reports means of 2.54 %, 1.77 % and 2.18 % under one, two and
three failures.  We reuse the shared sweeps (which already solved both
algorithms on every case), print the comparison, and benchmark the exact
solver on the flagship case so the absolute solver cost is tracked too.
"""

from __future__ import annotations

from repro.experiments.figures import fig7_data
from repro.experiments.report import render_fig7
from repro.fmssm.optimal import solve_optimal


def test_fig7_report(benchmark, context, sweep_1, sweep_2, sweep_3, capsys):
    """Print Fig. 7 and assert PM's speed advantage."""
    data = benchmark.pedantic(
        fig7_data, args=(context,),
        kwargs={"results_by_n": {1: sweep_1, 2: sweep_2, 3: sweep_3}},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_fig7(data))
        print("(paper means: 2.54%, 1.77%, 2.18%)")
    for n_failures in (1, 2, 3):
        mean = data["mean_pct"][n_failures]
        assert mean is not None
        # Paper: ~2%; assert the order of magnitude (well under 10%).
        assert mean < 10.0, f"{n_failures} failures: PM at {mean:.2f}% of Optimal"


def test_benchmark_optimal_flagship(benchmark, instance_13_20):
    """Time the exact P' solve on (13, 20) — the Fig. 7 denominator."""
    benchmark.pedantic(
        lambda: solve_optimal(instance_13_20, time_limit_s=300.0),
        iterations=1,
        rounds=1,
    )
