"""Recovery-timeline experiment (beyond the paper's figures).

The paper's title promises *predictable* recovery and argues that PG's
middle layer "not only increases the processing delay but also brings
new unreliability".  This bench simulates the full control loop
(detection → computation → handover → rule installation) for each
algorithm and reports when flows actually regain programmability.
"""

from __future__ import annotations

from repro.baselines import get_algorithm
from repro.experiments.report import render_table
from repro.simulation.timeline import TimelineParameters, simulate_recovery_timeline
from repro.types import FLOWVISOR_PROCESSING_MS


def test_timeline_report(benchmark, context, instance_13_20, capsys):
    """Per-algorithm recovery timeline on the flagship (13, 20) case."""

    def run_all():
        results = {}
        for name in ("retroflow", "pg", "pm"):
            solution = get_algorithm(name)(instance_13_20)
            parameters = TimelineParameters(
                middle_layer_ms=FLOWVISOR_PROCESSING_MS if name == "pg" else 0.0
            )
            results[name] = (
                simulate_recovery_timeline(instance_13_20, solution, parameters),
                solution,
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (report, solution) in results.items():
        rows.append(
            (
                name,
                len(report.flow_recovered_ms),
                f"{report.computation_done_ms:.1f}",
                f"{report.mean_flow_recovery_ms:.0f}",
                f"{report.p95_flow_recovery_ms:.0f}",
                f"{report.completed_ms:.0f}",
            )
        )
    with capsys.disabled():
        print()
        print("=== Recovery timeline after failure (13, 20) — times in ms ===")
        print(
            render_table(
                ("algorithm", "flows", "compute done", "mean recover", "p95", "all done"),
                rows,
            )
        )
    pg_report, _ = results["pg"]
    pm_report, _ = results["pm"]
    retro_report, _ = results["retroflow"]
    # PM and PG restore the same flow set; RetroFlow restores fewer.
    assert len(pm_report.flow_recovered_ms) == len(pg_report.flow_recovered_ms)
    assert len(retro_report.flow_recovered_ms) < len(pm_report.flow_recovered_ms)
    # Everyone completes within seconds — the predictability claim.
    for report, _ in results.values():
        assert report.completed_ms < 10_000.0


def test_benchmark_timeline_simulation(benchmark, instance_13_20):
    """Time one timeline simulation of a PM solution."""
    from repro.pm import solve_pm

    solution = solve_pm(instance_13_20)
    report = benchmark(simulate_recovery_timeline, instance_13_20, solution)
    assert report.flow_recovered_ms
