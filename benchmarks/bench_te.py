"""Application-level experiment (beyond the paper's figures): traffic
engineering on the recovered network.

The paper's introduction argues that losing path programmability costs
network performance under traffic variation.  This bench closes that
loop: after a double failure and a regional traffic surge, the max link
utilization achievable by greedy TE depends directly on how much
programmability each algorithm recovered.
"""

from __future__ import annotations

from repro.control.failures import FailureScenario
from repro.baselines import get_algorithm
from repro.experiments.report import render_table
from repro.flows.flow import Flow
from repro.fmssm.solution import RecoverySolution
from repro.te import (
    TrafficEngineer,
    betweenness_capacities,
    controllable_nodes,
    max_link_utilization,
    programmable_switches,
)

SURGE_NODE = 13
SURGE_FACTOR = 3.0


def _surged_flows(context):
    return {
        f.flow_id: Flow(
            f.src, f.dst, f.path,
            demand=SURGE_FACTOR if SURGE_NODE in f.path else 1.0,
        )
        for f in context.flows
    }


def test_te_report(benchmark, context, capsys):
    """MLU after TE, per recovery algorithm."""
    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)
    surged = _surged_flows(context)
    capacities = betweenness_capacities(context.topology, base=60.0, scale=4.0)

    def run_all():
        results = {}
        solutions = [("none", RecoverySolution(algorithm="none"))]
        solutions += [(n, get_algorithm(n)(instance)) for n in ("retroflow", "pg", "pm")]
        for name, solution in solutions:
            programmable = programmable_switches(instance, solution, surged.values())
            nodes = controllable_nodes(context.plane, scenario, solution)
            engineer = TrafficEngineer(
                context.topology, capacities, allowed_nodes=nodes
            )
            results[name] = engineer.relieve(surged, programmable, max_actions=60)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = max_link_utilization(context.topology, surged.values(), capacities)
    with capsys.disabled():
        print()
        print(
            f"=== TE after failure (13, 20) + {SURGE_FACTOR:.0f}x Dallas surge "
            f"(no-TE MLU {baseline:.3f}) ==="
        )
        print(
            render_table(
                ("recovered by", "MLU after TE", "relief %", "reroutes"),
                [
                    (
                        name,
                        f"{r.mlu_after:.3f}",
                        f"{100 * r.improvement:.1f}",
                        len(r.actions),
                    )
                    for name, r in results.items()
                ],
            )
        )
    # Shape: recovery strictly improves achievable relief; PM matches the
    # flow-level ceiling and beats the unrecovered network decisively.
    assert results["pm"].mlu_after < results["none"].mlu_after
    assert results["retroflow"].mlu_after < results["none"].mlu_after
    assert results["pm"].mlu_after <= results["retroflow"].mlu_after + 0.02
    assert results["pm"].mlu_after <= baseline


def test_benchmark_te_relieve(benchmark, context):
    """Time one greedy TE pass on the PM-recovered network."""
    from repro.pm import solve_pm

    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)
    surged = _surged_flows(context)
    capacities = betweenness_capacities(context.topology, base=60.0, scale=4.0)
    solution = solve_pm(instance)
    programmable = programmable_switches(instance, solution, surged.values())
    nodes = controllable_nodes(context.plane, scenario, solution)
    engineer = TrafficEngineer(context.topology, capacities, allowed_nodes=nodes)

    result = benchmark.pedantic(
        lambda: engineer.relieve(surged, programmable, max_actions=20),
        rounds=1,
        iterations=1,
    )
    assert result.mlu_after <= result.mlu_before
