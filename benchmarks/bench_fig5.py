"""Fig. 5 — two controller failures (15 cases, four algorithms).

Regenerates all six subfigures: (a) programmability box stats, (b) total
programmability vs RetroFlow, (c) % recovered flows, (d) recovered
switches, (e) control resource used, (f) per-flow overhead.  Prints the
report and benchmarks PM on the flagship (13, 20) instance.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import failure_figure_data, headline_ratios
from repro.experiments.report import render_figure
from repro.pm.algorithm import solve_pm


def test_fig5_report(benchmark, context, sweep_2, capsys):
    """Print Fig. 5 and assert the paper's two-failure shapes."""
    data = benchmark.pedantic(
        failure_figure_data, args=(context, 2), kwargs={"results": sweep_2},
        rounds=1, iterations=1,
    )
    ratios = headline_ratios(data)
    with capsys.disabled():
        print()
        print(render_figure(data))
        print(
            f"\nPM vs RetroFlow total programmability: "
            f"{ratios['min_pct']:.0f}%..{ratios['max_pct']:.0f}% "
            f"(paper: 105%..315%), max at {ratios['argmax_case']} "
            f"(paper: (13, 20))"
        )
    for case in data["cases"]:
        algorithms = case["algorithms"]
        # (a)/(c): PM and PG recover everything with least programmability 2;
        # RetroFlow leaves flows behind (least 0).
        assert algorithms["pm"]["recovered_flows_pct"] == pytest.approx(100.0)
        assert algorithms["pg"]["recovered_flows_pct"] == pytest.approx(100.0)
        assert algorithms["pm"]["least_programmability"] >= 2
        assert algorithms["retroflow"]["least_programmability"] == 0
        assert algorithms["retroflow"]["recovered_flows_pct"] < 100.0
    # (b): the flagship case with the unmappable hub switch wins.
    assert ratios["argmax_case"] == "(13, 20)"
    assert ratios["max_pct"] > 120.0


def test_benchmark_pm_two_failures(benchmark, instance_13_20):
    """Time PM on the paper's flagship (13, 20) instance."""
    solution = benchmark(solve_pm, instance_13_20)
    assert solution.feasible
