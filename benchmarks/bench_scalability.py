"""Scalability beyond the paper: PM and Optimal vs network size.

The paper motivates PM as the practical alternative to exact solving
("as the network size increases, the solution space could increase
significantly").  This bench quantifies that on synthetic Waxman WANs of
growing size: PM stays in milliseconds while the exact solve grows
sharply.
"""

from __future__ import annotations

import time

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.report import render_table
from repro.experiments.scenarios import custom_context
from repro.flows.demands import all_pairs_flows
from repro.flows.paths import switch_flow_counts
from repro.fmssm.optimal import solve_optimal
from repro.pm.algorithm import solve_pm
from repro.topology.generators import waxman_topology
from repro.topology.partition import nearest_site_partition

SIZES = (10, 20, 30, 40)


def _context_for(n: int):
    topology = waxman_topology(n, alpha=0.6, beta=0.35, seed=1)
    sites = topology.nodes[: max(3, n // 8)]
    # Capacity sized to baseline load + WAN-like slack.
    flows = all_pairs_flows(topology, weight="hops")
    gamma = switch_flow_counts(flows)
    worst = max(
        sum(gamma[s] for s in members)
        for members in nearest_site_partition(topology, sites).values()
    )
    return custom_context(topology, controller_sites=sites, capacity=int(worst * 1.5))


@pytest.fixture(scope="module", params=SIZES)
def sized_instance(request):
    context = _context_for(request.param)
    failed = context.plane.controller_ids[0]
    return request.param, context.instance(FailureScenario(frozenset({failed})))


def test_scalability_report(capsys, benchmark):
    """PM time grows mildly with size; the exact solver grows sharply."""
    rows = []

    def sweep():
        for n in SIZES:
            context = _context_for(n)
            failed = context.plane.controller_ids[0]
            instance = context.instance(FailureScenario(frozenset({failed})))
            start = time.perf_counter()
            solve_pm(instance)
            pm_s = time.perf_counter() - start
            start = time.perf_counter()
            optimal = solve_optimal(instance, time_limit_s=60.0)
            opt_s = time.perf_counter() - start
            rows.append(
                (
                    n,
                    instance.n_flows,
                    len(instance.pairs),
                    f"{1000 * pm_s:.1f}",
                    f"{opt_s:.2f}" if optimal.feasible else "n/a",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=== Scalability: one failure on Waxman WANs ===")
        print(
            render_table(
                ("nodes", "offline flows", "pairs", "pm (ms)", "optimal (s)"),
                rows,
            )
        )
    # PM stays fast even at the largest size.
    assert float(rows[-1][3]) < 1000.0


def test_benchmark_pm_by_size(benchmark, sized_instance):
    """Per-size PM timing series (appears as one bench per size)."""
    n, instance = sized_instance
    solution = benchmark(solve_pm, instance)
    assert solution.feasible
