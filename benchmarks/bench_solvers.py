"""Solver-stack comparison: HiGHS vs own branch-and-bound vs own simplex.

Not a paper figure — this validates and times the library's own
optimization substrate against the SciPy/HiGHS reference on FMSSM-shaped
problems, the way a release would document its solver options.
"""

from __future__ import annotations

import time

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.report import render_table
from repro.experiments.scenarios import custom_context
from repro.fmssm.formulation import build_fmssm_model
from repro.lp import LinExpr, Model, solve
from repro.topology.generators import ring_topology


@pytest.fixture(scope="module")
def small_fmssm_model():
    topology = ring_topology(8, chords=4, seed=3)
    context = custom_context(topology, controller_sites=(0, 4), capacity=220)
    instance = context.instance(FailureScenario(frozenset({0})))
    model, _ = build_fmssm_model(instance)
    return model


def _relax(model: Model) -> Model:
    relaxed = Model(model.name + "-relaxed")
    mapping = {}
    for var in model.variables:
        mapping[var.index] = relaxed.add_var(var.name, lb=var.lb, ub=var.ub)
    for constraint in model.constraints:
        expr = LinExpr.total(
            (coefficient, mapping[index])
            for index, coefficient in constraint.expr.coefficients.items()
        ) + constraint.expr.constant
        if constraint.sense == "<=":
            relaxed.add_constraint(expr <= 0)
        elif constraint.sense == ">=":
            relaxed.add_constraint(expr >= 0)
        else:
            relaxed.add_constraint(expr == 0)
    objective = LinExpr.total(
        (coefficient, mapping[index])
        for index, coefficient in model.objective.coefficients.items()
    )
    relaxed.set_objective(objective, sense=model.sense)
    return relaxed


def test_solver_comparison_report(benchmark, small_fmssm_model, capsys):
    """All three backends agree on a small FMSSM instance."""

    def run_all():
        rows = []
        results = {}
        for backend in ("highs", "bnb"):
            start = time.perf_counter()
            result = solve(small_fmssm_model, solver=backend)
            rows.append(
                (
                    backend + " (MILP)",
                    f"{result.objective:.4f}",
                    result.status.value,
                    f"{time.perf_counter() - start:.3f}s",
                )
            )
            results[backend] = result
        relaxed = _relax(small_fmssm_model)
        for backend in ("highs", "simplex"):
            start = time.perf_counter()
            result = solve(relaxed, solver=backend)
            rows.append(
                (
                    backend + " (LP relax)",
                    f"{result.objective:.4f}",
                    result.status.value,
                    f"{time.perf_counter() - start:.3f}s",
                )
            )
            results[backend + "-lp"] = result
        return rows, results

    rows, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"=== Solver stack on a {small_fmssm_model.n_vars}-variable "
            f"FMSSM model ==="
        )
        print(render_table(("backend", "objective", "status", "time"), rows))
    assert results["highs"].objective == pytest.approx(results["bnb"].objective, rel=1e-6)
    assert results["highs-lp"].objective == pytest.approx(
        results["simplex-lp"].objective, rel=1e-6
    )
    # The LP relaxation upper-bounds the MILP (maximization).
    assert results["highs-lp"].objective >= results["highs"].objective - 1e-6


def test_benchmark_highs_small_fmssm(benchmark, small_fmssm_model):
    """Track the absolute HiGHS time on the small instance."""
    result = benchmark.pedantic(
        lambda: solve(small_fmssm_model, solver="highs"), rounds=1, iterations=1
    )
    assert result.is_feasible
