"""Successive-failure experiment (the paper's "fail successively" case).

Controllers go down one after another; after each loss, recovery is
recomputed from scratch.  This bench prints the degradation trajectory —
spare capacity, recoverable flows, least programmability, recovery
fraction and fairness — for PM and RetroFlow.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import render_table
from repro.experiments.successive import run_successive

ORDER = (13, 20, 5)


def test_successive_report(benchmark, context, capsys):
    """Print the per-stage degradation for PM vs RetroFlow."""

    def run_both():
        return {
            name: run_successive(context, ORDER, algorithm=name)
            for name in ("pm", "retroflow")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for name, stages in results.items():
        for stage in stages:
            rows.append(
                (
                    name,
                    "(" + ", ".join(str(c) for c in stage.failed) + ")",
                    stage.total_spare,
                    stage.recoverable_flows,
                    stage.evaluation.least_programmability,
                    f"{100 * stage.evaluation.recovery_fraction:.1f}%",
                    f"{stage.fairness:.3f}",
                )
            )
    with capsys.disabled():
        print()
        print(f"=== Successive failures {ORDER}: recovery recomputed per stage ===")
        print(
            render_table(
                (
                    "algorithm",
                    "failed",
                    "spare",
                    "recoverable",
                    "least r",
                    "recovered",
                    "fairness",
                ),
                rows,
            )
        )
    pm_stages = results["pm"]
    retro_stages = results["retroflow"]
    # Spare capacity strictly shrinks with each failure.
    spares = [s.total_spare for s in pm_stages]
    assert spares == sorted(spares, reverse=True)
    # PM holds 100% recovery until capacity runs short at stage 3.
    assert pm_stages[0].evaluation.recovery_fraction == pytest.approx(1.0)
    assert pm_stages[1].evaluation.recovery_fraction == pytest.approx(1.0)
    assert pm_stages[2].evaluation.recovery_fraction > 0.9
    # RetroFlow's balance degrades faster than PM's at every multi-failure stage.
    for pm, retro in zip(pm_stages[1:], retro_stages[1:]):
        assert pm.fairness > retro.fairness
        assert pm.evaluation.recovery_fraction > retro.evaluation.recovery_fraction
