"""Table III — default controllers / switches / flow counts.

Regenerates the paper's Table III from the embedded ATT topology and the
all-pairs hop-count workload, prints it next to the paper's values, and
benchmarks the workload + count generation.
"""

from __future__ import annotations

from repro.experiments.report import render_table3
from repro.experiments.tables import table3_data
from repro.flows.demands import all_pairs_flows
from repro.flows.paths import switch_flow_counts


def test_table3_report(benchmark, context, capsys):
    """Print the regenerated Table III (paper vs measured)."""
    data = benchmark.pedantic(table3_data, args=(context,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table3(data))
    # Shape assertions: totals within 5 %, hub switch is 13.
    assert abs(data["measured_total"] - data["paper_total"]) / data["paper_total"] < 0.05
    hub = max(data["rows"], key=lambda r: r["flows"])
    assert hub["switch"] == 13


def test_benchmark_workload_generation(benchmark, context):
    """Time the Table III pipeline: all-pairs flows + per-switch counts."""

    def regenerate():
        flows = all_pairs_flows(context.topology, weight="hops")
        return switch_flow_counts(flows)

    gamma = benchmark(regenerate)
    assert sum(gamma.values()) > 2000
