"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each test isolates one decision: the objective weight lambda, the
path-programmability counting strategy, PM's phase 2 (and its order),
the delay constraint, and the controller capacity level.
"""

from __future__ import annotations

from repro.experiments.ablation import (
    capacity_sweep,
    counter_strategy_comparison,
    delay_constraint_ablation,
    lambda_sweep,
    phase2_ablation,
)
from repro.experiments.report import render_table
from repro.pm.algorithm import solve_pm


def test_lambda_sweep_report(benchmark, context, capsys):
    """obj1 (r) keeps priority while lambda stays under the safe bound."""
    rows = benchmark.pedantic(
        lambda_sweep, args=(context,),
        kwargs={"multipliers": (0.5, 1.0, 1000.0), "time_limit_s": 120.0},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print("=== Ablation: objective weight lambda ===")
        print(
            render_table(
                ("multiplier", "lambda", "least r", "total"),
                [(r["multiplier"], f"{r['lambda']:.2e}", r["least"], r["total"]) for r in rows],
            )
        )
    by_multiplier = {r["multiplier"]: r for r in rows}
    # Safe weights preserve the optimal least programmability.
    assert by_multiplier[0.5]["least"] == by_multiplier[1.0]["least"]
    # An oversized weight may trade r away for raw total; it must never
    # produce *more* r, and its total dominates.
    assert by_multiplier[1000.0]["least"] <= by_multiplier[1.0]["least"]
    assert by_multiplier[1000.0]["total"] >= by_multiplier[1.0]["total"]


def test_counter_strategy_report(benchmark, capsys):
    """Algorithm ordering survives the counting-strategy choice."""
    rows = benchmark.pedantic(counter_strategy_comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=== Ablation: path-count strategy (case (13, 20)) ===")
        print(
            render_table(
                ("strategy", "algorithm", "least r", "total", "recovered %"),
                [
                    (r["strategy"], r["algorithm"], r["least"], r["total"], f"{r['recovered_pct']:.1f}")
                    for r in rows
                ],
            )
        )
    by_key = {(r["strategy"], r["algorithm"]): r for r in rows}
    for strategy in ("lfa", "bounded", "dag"):
        pm = by_key[(strategy, "pm")]
        retro = by_key[(strategy, "retroflow")]
        assert pm["total"] > retro["total"], strategy
        assert pm["recovered_pct"] >= retro["recovered_pct"], strategy


def test_phase2_report(benchmark, context, capsys):
    """Dropping phase 2 keeps r but loses total programmability."""
    rows = benchmark.pedantic(phase2_ablation, args=(context,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=== Ablation: PM phase 2 (case (13, 20)) ===")
        print(
            render_table(
                ("variant", "least r", "total", "resource used"),
                [(r["variant"], r["least"], r["total"], r["resource_used"]) for r in rows],
            )
        )
    by_variant = {r["variant"]: r for r in rows}
    full = by_variant["pm (paper order)"]
    without = by_variant["pm (no phase 2)"]
    assert without["least"] == full["least"]  # balance unaffected
    assert without["total"] <= full["total"]  # saturation lost
    assert by_variant["pm (greedy order)"]["total"] >= full["total"]


def test_delay_constraint_report(benchmark, context, capsys):
    """PM-strict stays under G but recovers less total programmability."""
    rows = benchmark.pedantic(delay_constraint_ablation, args=(context,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=== Ablation: Eq. (14) delay budget (case (13, 20)) ===")
        print(
            render_table(
                ("variant", "total", "delay (ms)", "G (ms)", "overhead (ms)"),
                [
                    (
                        r["variant"],
                        r["total"],
                        f"{r['total_delay_ms']:.0f}",
                        f"{r['ideal_delay_ms']:.0f}",
                        f"{r['per_flow_overhead_ms']:.3f}",
                    )
                    for r in rows
                ],
            )
        )
    by_variant = {r["variant"]: r for r in rows}
    strict = by_variant["pm-strict"]
    loose = by_variant["pm"]
    assert strict["total_delay_ms"] <= strict["ideal_delay_ms"] + 1e-6
    assert strict["total"] <= loose["total"]


def test_capacity_sweep_report(benchmark, capsys):
    """Recovery crosses into full around the paper's capacity of 500."""
    rows = benchmark.pedantic(capacity_sweep, kwargs={"capacities": (420, 500, 600)}, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=== Ablation: controller capacity (case (5, 13, 20)) ===")
        print(
            render_table(
                ("capacity", "algorithm", "recovered %", "total"),
                [
                    (r["capacity"], r["algorithm"], f"{r['recovered_pct']:.1f}", r["total"])
                    for r in rows
                ],
            )
        )
    pm_rows = {r["capacity"]: r for r in rows if r["algorithm"] == "pm"}
    # Monotone in capacity, with full recovery at the high end.
    fractions = [pm_rows[c]["recovered_pct"] for c in (420, 500, 600)]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 100.0


def test_benchmark_pm_strict(benchmark, instance_13_20):
    """Time the delay-enforcing PM variant (the extra budget checks)."""
    solution = benchmark(solve_pm, instance_13_20, enforce_delay=True)
    assert solution.feasible
