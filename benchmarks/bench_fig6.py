"""Fig. 6 — three controller failures (20 cases, four algorithms).

The serious-failure scenario: capacity becomes scarce, Optimal lacks a
result in tight cases, RetroFlow degrades sharply, and PM stays close to
the flow-level PG.  Prints the full report and benchmarks PM on a tight
instance.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import failure_figure_data, headline_ratios
from repro.experiments.report import render_figure
from repro.pm.algorithm import solve_pm


def test_fig6_report(benchmark, context, sweep_3, capsys):
    """Print Fig. 6 and assert the paper's three-failure shapes."""
    data = benchmark.pedantic(
        failure_figure_data, args=(context, 3), kwargs={"results": sweep_3},
        rounds=1, iterations=1,
    )
    ratios = headline_ratios(data)
    infeasible = [
        case["case"]
        for case in data["cases"]
        if not case["algorithms"]["optimal"]["feasible"]
    ]
    with capsys.disabled():
        print()
        print(render_figure(data))
        print(
            f"\nPM vs RetroFlow total programmability: "
            f"{ratios['min_pct']:.0f}%..{ratios['max_pct']:.0f}% "
            f"(paper: up to 340%), max at {ratios['argmax_case']}"
        )
        print(
            f"Optimal has no result in {len(infeasible)}/20 cases "
            f"(paper: 8/20): {infeasible}"
        )
    # Paper shapes:
    assert 1 <= len(infeasible) <= 10  # some tight cases lack Optimal
    pm_fractions = [
        case["algorithms"]["pm"]["recovered_flows_pct"] for case in data["cases"]
    ]
    assert sum(1 for f in pm_fractions if f == pytest.approx(100.0)) >= 10
    assert min(pm_fractions) >= 60.0  # paper: 60-92% in the partial cases
    rf_fractions = [
        case["algorithms"]["retroflow"]["recovered_flows_pct"]
        for case in data["cases"]
    ]
    assert max(rf_fractions) < 90.0  # paper: 25-85%
    # PM always has a result even where Optimal does not.
    for case in data["cases"]:
        assert case["algorithms"]["pm"]["feasible"]


def test_benchmark_pm_three_failures(benchmark, instance_5_13_20):
    """Time PM on the tight (5, 13, 20) instance."""
    solution = benchmark(solve_pm, instance_5_13_20)
    assert solution.feasible
