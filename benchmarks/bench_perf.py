"""Quick perf headline: table build, parallel sweep, PM hot loop, Optimal.

This file runs in seconds — CI uses it as the quick-bench smoke job that
keeps ``BENCH_headline.json`` fresh and well-formed.  Timed stages:

* ``table_build_s`` — materializing the shared coefficient table
  (recorded by the session ``context`` fixture),
* ``sweep_serial_s`` / ``sweep_parallel_s`` — the heuristic-only
  one-failure sweep, serial versus process-pool,
* ``pm_n40_s`` / ``pm_n40_stress_s`` — the PM hot loop on the n=40
  Waxman WAN from ``bench_scalability.py`` (single failure, and the
  3-of-5 controller stress case where phase 1 dominates),
* ``optimal_n40_model_s`` / ``optimal_n40_sparse_s`` — one exact solve
  of P′ on the n=40 Waxman single-failure case via the DSL route versus
  the sparse compile + PM-certificate route (``repro.perf.compile``),
  with ``optimal_n40_compile_model_s`` / ``optimal_n40_compile_sparse_s``
  isolating the model-assembly share,
* ``sweep_fanout_pickle_s`` / ``sweep_shm_s`` — the 25-scenario n=40
  heuristic sweep over a pool, classic pickle fan-out versus the
  zero-copy shared-memory transport (the payload sizes land in the
  headline's ``fanout`` section), each paired with a ``*_solve_s``
  twin that subtracts the plan-encode and worker-init overhead a warm
  pool never pays,
* ``sweep_warmup_s`` / ``sweep_reuse_s`` — the same 25-scenario n=40
  sweep on a persistent :class:`~repro.perf.executor.SweepExecutor`:
  the first sweep pays the pool spawn + context encode once, the second
  rides warm workers and cached plans (CI guards
  ``sweep_reuse_s <= sweep_shm_s / 5`` within the same run),
* ``sweep_memo_cold_s`` / ``sweep_memo_hit_s`` — the same 25-scenario
  n=40 sweep against a fresh :class:`~repro.perf.store.SolveStore`:
  the cold pass populates the store, the hit pass replays every solve
  from it bit-identically (CI guards
  ``sweep_memo_hit_s <= sweep_reuse_s / 5`` within the same run, and
  that the hit pass reports zero store misses),
* ``campaign_shared_store_s`` — the ATT 1+2-failure campaign rerun over
  a store a previous campaign populated: pure hits end to end,
* ``sweep_supervised_s`` — the identical warm sweep under a fault-free
  :class:`~repro.resilience.supervisor.SweepSupervisor`: the watchdog /
  breaker / ledger bookkeeping must stay within a few percent of
  ``sweep_reuse_s`` (``check_headline.py`` enforces the same-run bound),
* ``sweep_quarantine_s`` — the ATT one-failure sweep under kill-worker
  chaos with a zero-retry supervisor: every scenario is quarantined to
  the parent-serial ladder and the quarantine count lands in the
  headline's ``degraded_solves`` section (CI asserts it is non-zero),
* ``campaign_figures_s`` — the ATT 1+2+3-failure figure sweeps chained
  through :func:`~repro.perf.executor.run_campaign` on one warm
  executor,
* ``sweep_independent_n40_s`` / ``sweep_incremental_s`` — the exact
  solver over the five n=40 single-failure scenarios, independent
  per-scenario solves versus the Hamming-chained incremental route,
* ``sweep_batched_lp_baseline_s`` / ``sweep_batched_lp_s`` — the exact
  solver over the 70 same-shape hub-family scenarios, scenario-at-a-time
  versus block-diagonal LP batching (``lp_batch=70``, one HiGHS call
  per stack; CI guards the >=3x same-run speedup and the per-block
  certificate provenance in the headline's ``batched`` section),
* ``pm_kernel_s`` / ``pg_kernel_s`` — the vectorized array kernels over
  the full ATT 1+2+3-failure matrix (41 instances), with the dict
  reference timed alongside for the speedup column,
* ``evaluate_batch_s`` — batched evaluation of all four heuristics'
  solutions across the same matrix,
* ``figures_sweep_s`` — ``fig6_data`` (20 three-failure cases,
  heuristics only) through the parallel-sweep figures knob.
"""

from __future__ import annotations

import time

import pytest

from conftest import record_fanout, record_stage, record_store, record_sweep
from repro.control.failures import FailureScenario
from repro.experiments.report import render_table
from repro.experiments.runner import run_failure_sweep, run_failure_sweep_parallel
from repro.pm.algorithm import solve_pm

#: The heuristics only — keeps the smoke job free of MILP solve time.
FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")


def assert_sweeps_identical(serial, parallel) -> None:
    """Byte-identical results modulo ``solve_time_s`` wall clocks."""
    assert [r.name for r in serial] == [r.name for r in parallel]
    for s, p in zip(serial, parallel):
        assert list(s.solutions) == list(p.solutions)
        for algorithm in s.solutions:
            ss, ps = s.solutions[algorithm], p.solutions[algorithm]
            assert ss.mapping == ps.mapping
            assert ss.sdn_pairs == ps.sdn_pairs
            assert ss.pair_controller == ps.pair_controller
            assert ss.load_override == ps.load_override
            assert ss.feasible == ps.feasible
            se, pe = s.evaluations[algorithm], p.evaluations[algorithm]
            assert se.programmability == pe.programmability
            assert se.least_programmability == pe.least_programmability
            assert se.total_programmability == pe.total_programmability
            assert se.controller_load == pe.controller_load
            assert se.total_delay_ms == pe.total_delay_ms


def test_parallel_sweep_headline(context, capsys):
    """Serial vs parallel heuristic sweep: identical output, timed stages."""
    start = time.perf_counter()
    serial = run_failure_sweep(context, 1, FAST_ALGORITHMS)
    serial_s = time.perf_counter() - start
    record_sweep("sweep_serial_s", serial_s, serial)

    start = time.perf_counter()
    parallel = run_failure_sweep_parallel(context, 1, FAST_ALGORITHMS, max_workers=4)
    parallel_s = time.perf_counter() - start
    record_stage("sweep_parallel_s", parallel_s)

    assert_sweeps_identical(serial, parallel)
    with capsys.disabled():
        print()
        print("=== Parallel failure sweep (heuristics only, 1 failure) ===")
        print(
            render_table(
                ("mode", "wall (s)"),
                [("serial", f"{serial_s:.3f}"), ("parallel x4", f"{parallel_s:.3f}")],
            )
        )


@pytest.fixture(scope="module")
def waxman40_context():
    from bench_scalability import _context_for

    return _context_for(40)


def test_pm_hot_loop_n40(waxman40_context, capsys):
    """PM stays in single-digit milliseconds on the n=40 Waxman WAN."""
    ids = waxman40_context.plane.controller_ids
    rows = []
    for stage, failed in (
        ("pm_n40_s", frozenset({ids[0]})),
        ("pm_n40_stress_s", frozenset(ids[:3])),
    ):
        instance = waxman40_context.instance(FailureScenario(failed))
        best = float("inf")
        solution = None
        for _ in range(5):
            start = time.perf_counter()
            solution = solve_pm(instance)
            best = min(best, time.perf_counter() - start)
        record_stage(stage, best)
        rows.append((stage, len(instance.switches), len(instance.pairs), f"{1000 * best:.2f}"))
        assert solution is not None and solution.feasible
        assert best < 1.0
    with capsys.disabled():
        print()
        print("=== PM hot loop on n=40 Waxman ===")
        print(render_table(("stage", "offline switches", "pairs", "best (ms)"), rows))


def test_vectorized_kernels(context, capsys):
    """Array kernels vs the dict reference over the ATT failure matrix."""
    from repro.baselines.nearest import solve_nearest
    from repro.baselines.pg import solve_pg
    from repro.baselines.retroflow import solve_retroflow
    from repro.control.failures import enumerate_failure_scenarios
    from repro.fmssm.evaluation import evaluate_batch, evaluate_solution
    from repro.perf.kernels import dict_kernel_reference, prepare_instance

    instances = [
        context.instance(scenario)
        for n in (1, 2, 3)
        for scenario in enumerate_failure_scenarios(context.plane, n)
    ]
    for instance in instances:
        prepare_instance(instance)

    rows = []
    for stage, solver in (("pm_kernel_s", solve_pm), ("pg_kernel_s", solve_pg)):
        array_s, _ = _best_of(3, lambda: [solver(i, kernel="array") for i in instances])
        with dict_kernel_reference():
            dict_s, _ = _best_of(3, lambda: [solver(i, kernel="dict") for i in instances])
        record_stage(stage, array_s)
        assert array_s < dict_s
        rows.append(
            (stage, f"{1000 * array_s:.2f}", f"{1000 * dict_s:.2f}", f"{dict_s / array_s:.2f}x")
        )

    solved = [
        (instance, [s(instance) for s in (solve_pm, solve_retroflow, solve_pg, solve_nearest)])
        for instance in instances
    ]
    batch_s, _ = _best_of(
        3, lambda: [evaluate_batch(instance, solutions) for instance, solutions in solved]
    )
    single_s, _ = _best_of(
        3,
        lambda: [
            evaluate_solution(instance, solution)
            for instance, solutions in solved
            for solution in solutions
        ],
    )
    record_stage("evaluate_batch_s", batch_s)
    rows.append(
        ("evaluate_batch_s", f"{1000 * batch_s:.2f}", f"{1000 * single_s:.2f}", f"{single_s / batch_s:.2f}x")
    )
    with capsys.disabled():
        print()
        print("=== Vectorized kernels on the ATT 1+2+3-failure matrix (41 instances) ===")
        print(render_table(("stage", "array (ms)", "dict (ms)", "speedup"), rows))


def test_figures_parallel_sweep(context, capsys):
    """Fig. 6 data (heuristics only) through the parallel-sweep knob."""
    from repro.experiments.figures import fig6_data

    start = time.perf_counter()
    data = fig6_data(context, algorithms=FAST_ALGORITHMS)
    elapsed = time.perf_counter() - start
    record_stage("figures_sweep_s", elapsed)
    assert len(data["cases"]) == 20
    assert all(
        case["algorithms"][name]["feasible"] is not None
        for case in data["cases"]
        for name in FAST_ALGORITHMS
    )
    with capsys.disabled():
        print()
        print("=== fig6_data via parallel sweep (20 cases x 4 heuristics) ===")
        print(render_table(("stage", "wall (s)"), [("figures_sweep_s", f"{elapsed:.3f}")]))


def _best_of(n, thunk):
    best, value = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        value = thunk()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_optimal_fast_path_n40(waxman40_context, capsys):
    """Sparse-compiled Optimal is ≥ 3× faster than the DSL route, same answer."""
    from repro.fmssm.formulation import build_fmssm_model
    from repro.fmssm.optimal import solve_optimal
    from repro.lp.standard_form import to_standard_form
    from repro.perf.compile import compile_fmssm

    ids = waxman40_context.plane.controller_ids
    instance = waxman40_context.instance(FailureScenario(frozenset({ids[0]})))

    compile_model_s, _ = _best_of(
        3,
        lambda: to_standard_form(
            build_fmssm_model(instance, require_full_recovery=True)[0]
        ),
    )
    record_stage("optimal_n40_compile_model_s", compile_model_s)
    compile_sparse_s, _ = _best_of(
        3, lambda: compile_fmssm(instance, require_full_recovery=True)
    )
    record_stage("optimal_n40_compile_sparse_s", compile_sparse_s)

    model_s, via_model = _best_of(
        3, lambda: solve_optimal(instance, time_limit_s=120, compile="model")
    )
    record_stage("optimal_n40_model_s", model_s)
    sparse_s, via_sparse = _best_of(
        3, lambda: solve_optimal(instance, time_limit_s=120, compile="sparse")
    )
    record_stage("optimal_n40_sparse_s", sparse_s)

    # Bit-identical verdict and canonical objective across routes.
    assert via_model.feasible and via_sparse.feasible
    assert via_model.meta["objective"] == via_sparse.meta["objective"]
    assert model_s >= 3.0 * sparse_s

    with capsys.disabled():
        print()
        print("=== Optimal exact solve on n=40 Waxman (1 failure) ===")
        print(
            render_table(
                ("route", "compile (ms)", "end-to-end (ms)"),
                [
                    ("model (DSL)", f"{1000 * compile_model_s:.2f}", f"{1000 * model_s:.1f}"),
                    ("sparse", f"{1000 * compile_sparse_s:.2f}", f"{1000 * sparse_s:.1f}"),
                ],
            )
        )
        print(f"speedup: {model_s / sparse_s:.1f}x  (certificate={via_sparse.meta['certificate']})")


def _failure_scenarios(context, depths):
    from repro.control.failures import enumerate_failure_scenarios

    scenarios = []
    for n_failures in depths:
        scenarios.extend(enumerate_failure_scenarios(context.plane, n_failures))
    return scenarios


def test_sweep_fanout_transports(waxman40_context, capsys):
    """Shm fan-out ships a ≥10× smaller per-worker payload, same answers."""
    from repro.perf.sweep import fanout_summary, parallel_sweep

    scenarios = _failure_scenarios(waxman40_context, (1, 2, 3))

    start = time.perf_counter()
    via_pickle = parallel_sweep(
        waxman40_context, scenarios, FAST_ALGORITHMS,
        max_workers=4, min_parallel_tasks=0, transport="pickle",
    )
    pickle_wall_s = time.perf_counter() - start
    record_sweep("sweep_fanout_pickle_s", pickle_wall_s, via_pickle)
    start = time.perf_counter()
    via_shm = parallel_sweep(
        waxman40_context, scenarios, FAST_ALGORITHMS,
        max_workers=4, min_parallel_tasks=0, transport="shm",
    )
    shm_wall_s = time.perf_counter() - start
    record_stage("sweep_shm_s", shm_wall_s)

    assert_sweeps_identical(via_pickle, via_shm)

    pickle_fan = fanout_summary(via_pickle) or {}
    fan = dict(fanout_summary(via_shm) or {})
    # The end-to-end stages above include what a warm pool never pays:
    # the parent-side plan encode and the slowest worker's plan decode.
    # These twins subtract both, so the transports' *solve* shares are
    # comparable to the warm-executor stages.
    pickle_overhead_s = pickle_fan.get("encode_s", 0.0) + (
        pickle_fan.get("worker_init_s") or 0.0
    )
    record_stage(
        "sweep_fanout_pickle_solve_s",
        max(0.0, pickle_wall_s - pickle_overhead_s),
    )
    shm_overhead_s = fan.get("encode_s", 0.0) + (fan.get("worker_init_s") or 0.0)
    record_stage("sweep_shm_solve_s", max(0.0, shm_wall_s - shm_overhead_s))
    fan["pickle_payload_bytes"] = pickle_fan.get("payload_bytes", 0)
    record_fanout(fan)
    if fan.get("transport") == "shm":
        # The headline claim: the per-worker in-band payload shrinks by
        # at least an order of magnitude once the arrays go out of band.
        assert fan["payload_bytes"] * 10 <= fan["pickle_payload_bytes"], fan

    with capsys.disabled():
        print()
        print("=== Pool fan-out transport (25 scenarios, heuristics) ===")
        print(
            render_table(
                ("transport", "in-band payload (B)", "shared (B)"),
                [
                    ("pickle", f"{fan['pickle_payload_bytes']}", "0"),
                    (
                        fan.get("transport", "pickle"),
                        f"{fan.get('payload_bytes', 0)}",
                        f"{fan.get('shared_bytes', 0)}",
                    ),
                ],
            )
        )


def test_sweep_executor_reuse(waxman40_context, capsys):
    """Warm-executor reuse: the second identical sweep is nearly free.

    Shape matches ``test_sweep_fanout_transports`` (25 scenarios, four
    heuristics, 4 workers) so ``sweep_reuse_s`` is directly comparable
    to the cold ``sweep_shm_s`` fan-out; ``check_headline.py`` enforces
    the >=5x same-run improvement.
    """
    from repro.perf.executor import SweepExecutor
    from repro.perf.sweep import parallel_sweep
    from repro.resilience.supervisor import SweepSupervisor

    scenarios = _failure_scenarios(waxman40_context, (1, 2, 3))
    reference = parallel_sweep(
        waxman40_context, scenarios, FAST_ALGORITHMS, max_workers=1,
    )
    with SweepExecutor(max_workers=4) as executor:
        start = time.perf_counter()
        first = parallel_sweep(
            waxman40_context, scenarios, FAST_ALGORITHMS,
            max_workers=4, min_parallel_tasks=0, executor=executor,
        )
        warmup_s = time.perf_counter() - start
        record_sweep("sweep_warmup_s", warmup_s, first)
        # Steady state, best of three: a freshly spawned pool needs a
        # sweep or two before every worker has pulled a chunk and built
        # its caches (worker-to-chunk assignment is scheduler-dependent).
        reuse_s, second = _best_of(
            3,
            lambda: parallel_sweep(
                waxman40_context, scenarios, FAST_ALGORITHMS,
                max_workers=4, min_parallel_tasks=0, executor=executor,
            ),
        )
        record_sweep("sweep_reuse_s", reuse_s, second)
        assert executor.stats["encode_hits"] == 3

        # The identical warm sweep under a fault-free supervisor: same
        # answers, and the watchdog/breaker/ledger bookkeeping must not
        # meaningfully tax the steady state (design target <= 5%;
        # check_headline.py enforces a jitter-tolerant same-run bound).
        supervisor = SweepSupervisor()
        supervised_s, supervised = _best_of(
            3,
            lambda: parallel_sweep(
                waxman40_context, scenarios, FAST_ALGORITHMS,
                max_workers=4, min_parallel_tasks=0,
                executor=executor, supervisor=supervisor,
            ),
        )
        record_sweep("sweep_supervised_s", supervised_s, supervised)
        assert supervisor.stats["preemptions"] == 0
        assert supervisor.stats["pool_crashes"] == 0
        assert supervisor.stats["quarantined"] == 0

    assert_sweeps_identical(reference, first)
    assert_sweeps_identical(reference, second)
    assert_sweeps_identical(reference, supervised)
    with capsys.disabled():
        print()
        print("=== Warm-executor sweep reuse (25 scenarios, heuristics) ===")
        print(
            render_table(
                ("sweep", "wall (s)"),
                [
                    ("first (cold workers)", f"{warmup_s:.3f}"),
                    ("second (warm)", f"{reuse_s:.3f}"),
                    (
                        "supervised (warm, fault-free)",
                        f"{supervised_s:.3f}  ({supervised_s / reuse_s:.2f}x)",
                    ),
                ],
            )
        )


def test_sweep_store_memo(waxman40_context, tmp_path_factory, capsys):
    """Cross-run solve memoization: hits replay the sweep bit-identically.

    Shape matches ``test_sweep_executor_reuse`` (25 scenarios, four
    heuristics, 4 workers) so ``sweep_memo_hit_s`` is directly
    comparable to the warm ``sweep_reuse_s``; ``check_headline.py``
    enforces the >=5x same-run improvement and that the hit pass
    reports zero misses.
    """
    from repro.perf.store import SolveStore
    from repro.perf.sweep import parallel_sweep, store_summary

    scenarios = _failure_scenarios(waxman40_context, (1, 2, 3))
    reference = parallel_sweep(
        waxman40_context, scenarios, FAST_ALGORITHMS, max_workers=1,
    )
    root = tmp_path_factory.mktemp("solve-store")

    start = time.perf_counter()
    cold = parallel_sweep(
        waxman40_context, scenarios, FAST_ALGORITHMS,
        max_workers=4, min_parallel_tasks=0, store=SolveStore(root),
    )
    cold_s = time.perf_counter() - start
    record_sweep("sweep_memo_cold_s", cold_s, cold)
    assert store_summary(cold)["misses"] == len(scenarios) * len(FAST_ALGORITHMS)

    # Hit pass, best of three: every solve replays from the store (a
    # fresh handle each round — the cross-run case, no warm index).
    hit_s, hot = _best_of(
        3,
        lambda: parallel_sweep(
            waxman40_context, scenarios, FAST_ALGORITHMS,
            max_workers=4, min_parallel_tasks=0, store=SolveStore(root),
        ),
    )
    record_sweep("sweep_memo_hit_s", hit_s, hot)

    assert_sweeps_identical(reference, cold)
    assert_sweeps_identical(reference, hot)
    summary = store_summary(hot)
    assert summary["misses"] == 0
    assert summary["hits"] == len(scenarios) * len(FAST_ALGORITHMS)
    record_store(
        {
            "memo_hits": summary["hits"],
            "memo_misses": summary["misses"],
            "memo_dedup": summary["dedup"],
        }
    )
    with capsys.disabled():
        print()
        print("=== Cross-run solve store (25 scenarios, heuristics) ===")
        print(
            render_table(
                ("sweep", "wall (s)"),
                [
                    ("cold (populates store)", f"{cold_s:.3f}"),
                    (
                        "hit (replayed)",
                        f"{hit_s:.3f}  ({cold_s / hit_s:.2f}x)",
                    ),
                ],
            )
        )


def test_campaign_shared_store(context, tmp_path_factory, capsys):
    """A campaign rerun over a previously populated store: pure hits."""
    from repro.control.failures import enumerate_failure_scenarios
    from repro.perf.executor import SweepExecutor, campaign_summary, run_campaign
    from repro.perf.store import SolveStore
    from repro.perf.sweep import parallel_sweep

    sweeps = [
        tuple(enumerate_failure_scenarios(context.plane, n)) for n in (1, 2)
    ]
    references = [
        parallel_sweep(context, sweep, FAST_ALGORITHMS, max_workers=1)
        for sweep in sweeps
    ]
    root = tmp_path_factory.mktemp("campaign-store")
    with SweepExecutor(max_workers=4) as executor:
        # First campaign populates the store (a previous run's role).
        for _ in run_campaign(
            context, sweeps, FAST_ALGORITHMS,
            executor=executor, max_workers=4, min_parallel_tasks=0,
            store=SolveStore(root),
        ):
            pass
        start = time.perf_counter()
        collected: dict[int, list] = {}
        for index, results in run_campaign(
            context, sweeps, FAST_ALGORITHMS,
            executor=executor, max_workers=4, min_parallel_tasks=0,
            store=SolveStore(root),
        ):
            collected[index] = results
        campaign_s = time.perf_counter() - start
    record_sweep(
        "campaign_shared_store_s", campaign_s,
        [r for results in collected.values() for r in results],
    )
    for index, reference in enumerate(references):
        assert_sweeps_identical(reference, collected[index])
    summary = campaign_summary(collected)
    assert summary["store_misses"] == 0
    assert summary["store_hits"] == sum(len(s) for s in sweeps) * len(FAST_ALGORITHMS)
    record_store(
        {
            "campaign_hits": summary["store_hits"],
            "campaign_misses": summary["store_misses"],
            "campaign_dedup": summary["store_dedup"],
        }
    )
    with capsys.disabled():
        print()
        print("=== Campaign rerun on a shared store (ATT 1+2 failures) ===")
        print(
            render_table(
                ("stage", "wall (s)", "hits"),
                [(
                    "campaign_shared_store_s",
                    f"{campaign_s:.3f}",
                    f"{summary['store_hits']}/{summary['store_hits']}",
                )],
            )
        )


def test_sweep_supervised_quarantine(context, capsys):
    """Kill-worker chaos: every scenario quarantines, answers unchanged.

    A zero-retry supervisor under a ``kill-worker`` plan routes the
    whole ATT one-failure sweep through the parent-serial quarantine
    path.  The stage exists so the headline's ``degraded_solves``
    section visibly attributes quarantined scenarios —
    ``check_headline.py`` fails when this stage reports zero.
    """
    import warnings

    from repro.control.failures import enumerate_failure_scenarios
    from repro.exceptions import DegradedResultWarning
    from repro.perf.executor import SweepExecutor
    from repro.perf.sweep import parallel_sweep
    from repro.resilience import chaos
    from repro.resilience.chaos import ChaosPlan, Fault
    from repro.resilience.supervisor import SupervisorPolicy, SweepSupervisor

    scenarios = tuple(enumerate_failure_scenarios(context.plane, 1))
    reference = parallel_sweep(context, scenarios, FAST_ALGORITHMS, max_workers=1)
    supervisor = SweepSupervisor(
        SupervisorPolicy(max_task_retries=0, max_pool_restarts=10)
    )
    chaos.install(
        ChaosPlan((Fault("sweep.task", "kill-worker", at_call=1, count=None),))
    )
    try:
        with SweepExecutor(max_workers=4) as executor:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                start = time.perf_counter()
                results = parallel_sweep(
                    context, scenarios, FAST_ALGORITHMS,
                    max_workers=4, min_parallel_tasks=0,
                    executor=executor, supervisor=supervisor,
                )
                quarantine_s = time.perf_counter() - start
    finally:
        chaos.uninstall()
    record_sweep("sweep_quarantine_s", quarantine_s, results)

    assert_sweeps_identical(reference, results)
    assert supervisor.stats["quarantined"] == len(scenarios)
    assert all(
        r.meta.get("supervisor", {}).get("quarantined") for r in results
    )
    with capsys.disabled():
        print()
        print("=== Supervised quarantine under kill-worker chaos (ATT, 1 failure) ===")
        print(
            render_table(
                ("stage", "wall (s)", "quarantined"),
                [(
                    "sweep_quarantine_s",
                    f"{quarantine_s:.3f}",
                    f"{supervisor.stats['quarantined']}/{len(scenarios)}",
                )],
            )
        )


def test_campaign_figures(context, capsys):
    """The ATT figure sweeps as one campaign over a shared warm executor."""
    from repro.control.failures import enumerate_failure_scenarios
    from repro.perf.executor import SweepExecutor, run_campaign
    from repro.perf.sweep import parallel_sweep

    sweeps = [
        tuple(enumerate_failure_scenarios(context.plane, n)) for n in (1, 2, 3)
    ]
    references = [
        parallel_sweep(context, sweep, FAST_ALGORITHMS, max_workers=1)
        for sweep in sweeps
    ]
    with SweepExecutor(max_workers=4) as executor:
        start = time.perf_counter()
        collected: dict[int, list] = {}
        for index, results in run_campaign(
            context, sweeps, FAST_ALGORITHMS,
            executor=executor, max_workers=4, min_parallel_tasks=0,
        ):
            collected[index] = results
        campaign_s = time.perf_counter() - start
    record_sweep(
        "campaign_figures_s", campaign_s,
        [r for results in collected.values() for r in results],
    )
    assert sorted(collected) == [0, 1, 2]
    for index, reference in enumerate(references):
        assert_sweeps_identical(reference, collected[index])
    with capsys.disabled():
        print()
        print("=== Figure sweeps as a warm campaign (ATT 1+2+3 failures) ===")
        print(
            render_table(
                ("stage", "wall (s)"),
                [("campaign_figures_s", f"{campaign_s:.3f}")],
            )
        )


def test_sweep_incremental_chain(waxman40_context, capsys):
    """The Hamming-chained sweep returns bit-identical exact solutions."""
    from repro.perf.sweep import parallel_sweep

    scenarios = _failure_scenarios(waxman40_context, (1,))
    algorithms = ("pm", "optimal")

    start = time.perf_counter()
    independent = parallel_sweep(
        waxman40_context, scenarios, algorithms,
        optimal_time_limit_s=120.0, max_workers=1,
    )
    independent_s = time.perf_counter() - start
    record_sweep("sweep_independent_n40_s", independent_s, independent)
    start = time.perf_counter()
    incremental = parallel_sweep(
        waxman40_context, scenarios, algorithms,
        optimal_time_limit_s=120.0, max_workers=1, incremental=True,
    )
    incremental_s = time.perf_counter() - start
    record_sweep("sweep_incremental_s", incremental_s, incremental)

    assert_sweeps_identical(independent, incremental)
    for a, b in zip(independent, incremental):
        assert a.solutions["optimal"].meta.get("objective") == (
            b.solutions["optimal"].meta.get("objective")
        )

    with capsys.disabled():
        print()
        print("=== Incremental exact sweep (5 single-failure scenarios) ===")
        print(
            render_table(
                ("route", "wall (s)"),
                [
                    ("independent", f"{independent_s:.3f}"),
                    ("incremental", f"{incremental_s:.3f}"),
                ],
            )
        )


def test_sweep_batched_lp(capsys):
    """Block-diagonal LP batching: 70 same-shape exact solves, one stack.

    The hub-capacity family (:func:`~repro.experiments.scenarios.
    hub_capacity_context`) yields 70 structurally identical scenarios
    whose exact solves all accept through the LP-relaxation certificate
    — the shape the batcher exists for.  ``sweep_batched_lp_baseline_s``
    runs them scenario-at-a-time on the sparse route;
    ``sweep_batched_lp_s`` stacks them into one block-diagonal HiGHS
    call per batch.  ``check_headline.py`` enforces the >=3x same-run
    speedup and the per-scenario <= ``sweep_independent_n40_s`` bound;
    this test asserts bit-identical answers and per-block certificate
    provenance.
    """
    from conftest import record_batched
    from repro.experiments.scenarios import hub_capacity_context
    from repro.perf.sweep import parallel_sweep

    hub_context, scenarios = hub_capacity_context()
    algorithms = ("optimal",)

    start = time.perf_counter()
    baseline = parallel_sweep(
        hub_context, scenarios, algorithms,
        optimal_time_limit_s=120.0, max_workers=1,
    )
    baseline_s = time.perf_counter() - start
    record_sweep("sweep_batched_lp_baseline_s", baseline_s, baseline)
    start = time.perf_counter()
    batched = parallel_sweep(
        hub_context, scenarios, algorithms,
        optimal_time_limit_s=120.0, max_workers=1, lp_batch=len(scenarios),
    )
    batched_s = time.perf_counter() - start
    record_sweep("sweep_batched_lp_s", batched_s, batched)

    assert_sweeps_identical(baseline, batched)
    summary = {
        "scenarios": len(scenarios),
        "stacked": 0,
        "fallback": 0,
        "certificates": 0,
        "speedup": round(baseline_s / batched_s, 2) if batched_s else None,
    }
    for base_result, result in zip(baseline, batched):
        base_sol = base_result.solutions["optimal"]
        solution = result.solutions["optimal"]
        assert solution.meta.get("objective") == base_sol.meta.get("objective")
        # CI contract: the batched route must report per-block
        # certificate provenance, not just a bare answer.
        provenance = solution.meta.get("batch")
        assert provenance is not None, "batched solve missing meta['batch']"
        assert "certificate" in provenance, provenance
        if provenance["route"] == "stack":
            summary["stacked"] += 1
        else:
            summary["fallback"] += 1
        if provenance["certificate"]:
            summary["certificates"] += 1
    record_batched(summary)
    assert summary["stacked"] == len(scenarios), summary
    assert summary["certificates"] == len(scenarios), summary

    with capsys.disabled():
        print()
        print("=== Batched exact sweep (70 same-shape hub scenarios) ===")
        print(
            render_table(
                ("route", "wall (s)"),
                [
                    ("scenario-at-a-time", f"{baseline_s:.3f}"),
                    (f"lp_batch={len(scenarios)}", f"{batched_s:.3f}"),
                ],
            )
        )
        print(f"speedup: {baseline_s / batched_s:.1f}x")
