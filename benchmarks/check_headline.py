"""Diff a fresh ``BENCH_headline.json`` against the committed baseline.

CI runs the quick-bench job on shared virtualized runners, so stage wall
clocks jitter by several multiples between runs — absolute thresholds
would be permanently flaky.  Instead this checker compares each stage of
a freshly produced ``BENCH_headline.json`` against the committed
``benchmarks/BENCH_baseline.json`` with a *generous* per-stage tolerance
(default 10×) and fails only on order-of-magnitude regressions: the kind
a code change causes and machine noise does not.

Rules
-----
* A stage present in both files fails when
  ``current > tolerance * max(baseline, floor)`` — the absolute floor
  (default 50 ms) keeps microsecond-scale stages (e.g. ``pm_n40_s``)
  from tripping on scheduler noise.
* A stage present in the baseline but missing from the current run fails
  (a silently dropped benchmark looks like a perf win).
* New stages in the current run pass (they become baseline next refresh).
* Degraded solves (``degraded_solves`` section: pm-fallbacks, ladder
  demotions) may exceed the baseline total by at most ``--degraded-slack``
  (default 5).  A solver change that silently mass-degrades to the PM
  heuristic would otherwise read as a massive speedup.
* Warm-executor reuse is a *same-run* invariant, immune to runner speed:
  when both stages are present, ``sweep_reuse_s`` (second sweep on a
  warm :class:`~repro.perf.executor.SweepExecutor`) must be at most
  ``sweep_shm_s / 5`` — the whole point of the persistent pool is that
  repeat sweeps stop paying the fan-out bill.
* Fault-free supervision is likewise a same-run invariant:
  ``sweep_supervised_s`` (the identical warm sweep under a
  :class:`~repro.resilience.supervisor.SweepSupervisor`) must stay
  within ``SUPERVISED_OVERHEAD`` of ``sweep_reuse_s`` — the watchdog,
  breakers and retry ledger are bookkeeping, not a second sweep.
* Store-hit replay is likewise a same-run invariant:
  ``sweep_memo_hit_s`` (re-sweeping a store populated moments earlier)
  must be at most ``sweep_reuse_s / 5``, and the headline's ``store``
  section must show the memo stages actually hitting (nonzero hits,
  zero misses) — a replay that quietly re-solved everything would
  otherwise time the solver and call it a cache.
* When the kill-worker chaos stage ran (``sweep_quarantine_s``), its
  ``degraded_solves`` entry must be non-zero: quarantined scenarios
  that vanish from the headline are the silent-degradation blindspot
  the section exists to close.
* Block-diagonal LP batching is likewise a same-run invariant:
  ``sweep_batched_lp_s`` (the same exact sweep with ``lp_batch`` set)
  must beat the scenario-at-a-time ``sweep_batched_lp_baseline_s`` it
  was timed against by ``BATCHED_LP_SPEEDUP``×, its per-scenario cost
  must not exceed the independent sparse route's
  (``sweep_independent_n40_s``, normalized by each stage's scenario
  count), and the headline's ``batched`` section must show every block
  carrying a per-block certificate (``certificates == scenarios``) — a
  batch that quietly fell back to scenario-at-a-time solves would
  otherwise time the old route and call it batching.
* The ``fanout`` section (payload *bytes*, deliberately excluded from
  the seconds comparison — byte counts are deterministic, so they get
  no tolerance) fails when the shared-memory route's per-worker in-band
  payload grows to the baseline's *pickle* payload size, or when the
  transport silently degrades from shm to pickle: either means the
  zero-copy fan-out stopped doing its job.

Usage::

    python benchmarks/check_headline.py \
        [--current BENCH_headline.json] \
        [--baseline benchmarks/BENCH_baseline.json] \
        [--tolerance 10.0] [--floor-s 0.05] [--degraded-slack 5]

Refresh the baseline by copying a representative ``BENCH_headline.json``
over ``benchmarks/BENCH_baseline.json`` and committing it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_headline.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"

#: Regressions smaller than this factor are treated as machine noise.
DEFAULT_TOLERANCE = 10.0
#: Stages faster than this (in either file) are compared against the
#: floor instead — sub-50 ms timings are dominated by scheduler jitter.
DEFAULT_FLOOR_S = 0.05
#: How many more degraded solves than the baseline are acceptable (a
#: genuinely hard instance may time out on a slow runner; dozens doing
#: so means the exact solver is broken).
DEFAULT_DEGRADED_SLACK = 5


def load_headline(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if payload.get("schema") != 1 or payload.get("unit") != "seconds":
        raise SystemExit(f"{path}: unsupported headline schema: {payload!r}")
    return payload


def load_stages(path: Path) -> dict[str, float]:
    payload = load_headline(path)
    stages = payload.get("stages")
    if not isinstance(stages, dict) or not stages:
        raise SystemExit(f"{path}: stages must be a non-empty mapping")
    return {name: float(seconds) for name, seconds in stages.items()}


def load_degraded(path: Path) -> dict[str, int]:
    """The ``degraded_solves`` section; empty for pre-section headlines."""
    degraded = load_headline(path).get("degraded_solves", {})
    if not isinstance(degraded, dict):
        raise SystemExit(f"{path}: degraded_solves must be a mapping")
    return {name: int(count) for name, count in degraded.items()}


def compare_degraded(
    current: dict[str, int],
    baseline: dict[str, int],
    slack: int = DEFAULT_DEGRADED_SLACK,
) -> list[str]:
    """Failure messages when solves silently mass-degraded to fallbacks."""
    current_total = sum(current.values())
    baseline_total = sum(baseline.values())
    if current_total > baseline_total + slack:
        detail = ", ".join(
            f"{name}={count}" for name, count in sorted(current.items()) if count
        ) or "none attributed"
        return [
            f"degraded solves: {current_total} exceeds baseline "
            f"{baseline_total} + slack {slack} ({detail}) — the exact solver "
            f"is silently falling back to heuristics"
        ]
    return []


def load_fanout(path: Path) -> dict[str, object]:
    """The ``fanout`` section; empty for pre-section headlines."""
    fanout = load_headline(path).get("fanout", {})
    if not isinstance(fanout, dict):
        raise SystemExit(f"{path}: fanout must be a mapping")
    return fanout


def compare_fanout(
    current: dict[str, object], baseline: dict[str, object]
) -> list[str]:
    """Failure messages when the zero-copy fan-out regressed.

    Byte counts are deterministic for a given plan, so no tolerance
    factor applies: the in-band payload of the shm route must stay below
    the pickle payload recorded in the baseline.
    """
    if not current or not baseline:
        return []
    failures = []
    if baseline.get("transport") == "shm" and current.get("transport") != "shm":
        failures.append(
            f"fanout: transport degraded to {current.get('transport')!r} "
            f"(baseline used shm)"
        )
        return failures
    pickle_bytes = baseline.get("pickle_payload_bytes")
    payload_bytes = current.get("payload_bytes")
    if (
        isinstance(pickle_bytes, (int, float))
        and isinstance(payload_bytes, (int, float))
        and payload_bytes > pickle_bytes
    ):
        failures.append(
            f"fanout: in-band payload {payload_bytes} B exceeds the baseline "
            f"pickle payload {pickle_bytes} B — the shared-memory transport "
            f"is no longer moving the arrays out of band"
        )
    return failures


#: The warm second sweep must beat the cold shm fan-out by this factor.
REUSE_SPEEDUP = 5.0

#: Same-run ceiling on the fault-free supervisor tax over plain warm
#: reuse.  The design target is <= 5% (both stages are best-of-three on
#: the same executor in the same process), but shared CI runners jitter
#: short stages well past that, so the guard only catches the failure
#: mode that matters: the watchdog/ledger bookkeeping growing from
#: "a few percent" to "a constant factor".
SUPERVISED_OVERHEAD = 1.25


def compare_supervised_overhead(
    current: dict[str, float], factor: float = SUPERVISED_OVERHEAD
) -> list[str]:
    """Failure messages when fault-free supervision stopped being free.

    ``sweep_supervised_s`` and ``sweep_reuse_s`` time the *identical*
    warm sweep in the same run, so like the reuse guard this is a
    same-run invariant immune to runner speed.  Runs predating the
    supervisor pass vacuously.
    """
    supervised_s = current.get("sweep_supervised_s")
    reuse_s = current.get("sweep_reuse_s")
    if supervised_s is None or reuse_s is None:
        return []
    if supervised_s > factor * reuse_s:
        return [
            f"sweep_supervised_s: {supervised_s:.4f}s exceeds {factor:g}x the "
            f"same run's unsupervised sweep_reuse_s {reuse_s:.4f}s — the "
            f"fault-free supervisor overhead has regressed past its <=5% "
            f"design target"
        ]
    return []


def compare_quarantine_visibility(
    stages: dict[str, float], degraded: dict[str, int]
) -> list[str]:
    """Failure messages when the chaos stage's quarantines went dark.

    The kill-worker benchmark quarantines every scenario by design; its
    ``degraded_solves`` entry reading zero means the supervisor stopped
    attributing quarantined scenarios to the headline — exactly the
    silent-degradation blindspot the section exists to close.
    """
    if "sweep_quarantine_s" not in stages:
        return []
    if not degraded.get("sweep_quarantine_s"):
        return [
            "sweep_quarantine_s: the kill-worker chaos stage ran but "
            "degraded_solves attributes no quarantined scenarios to it — "
            "supervisor quarantine reporting is broken"
        ]
    return []


#: The store-hit replay must beat the warm executor sweep by this factor.
MEMO_HIT_SPEEDUP = 5.0


def compare_memo_hit(
    current: dict[str, float], speedup: float = MEMO_HIT_SPEEDUP
) -> list[str]:
    """Failure messages when store-hit replay stopped paying off.

    ``sweep_memo_hit_s`` replays the very sweep ``sweep_reuse_s`` solves
    on a warm executor in the same run, so like the reuse guard this is
    a same-run invariant immune to runner speed: replaying solved
    records from the solve store must beat re-solving them — even on a
    warm pool — by a wide margin, or the memo layer is just overhead.
    Runs predating the store pass vacuously.
    """
    hit_s = current.get("sweep_memo_hit_s")
    reuse_s = current.get("sweep_reuse_s")
    if hit_s is None or reuse_s is None:
        return []
    if hit_s > reuse_s / speedup:
        return [
            f"sweep_memo_hit_s: {hit_s:.4f}s is not {speedup:g}x faster than "
            f"the same run's warm sweep_reuse_s {reuse_s:.4f}s — store-hit "
            f"replay has regressed to re-solving cost"
        ]
    return []


def load_store(path: Path) -> dict[str, object]:
    """The ``store`` section; empty for pre-section headlines."""
    store = load_headline(path).get("store", {})
    if not isinstance(store, dict):
        raise SystemExit(f"{path}: store must be a mapping")
    return store


def compare_store_visibility(
    stages: dict[str, float], store: dict[str, object]
) -> list[str]:
    """Failure messages when the memo stages' hits went dark.

    The hit-replay benchmark re-sweeps a store it just populated, so
    every solve must be a hit and none a miss; a headline that times the
    stage but counts zero hits (or any miss) means the sweep quietly
    re-solved everything — the timing would measure solver speed, not
    replay, and the speedup guard above would pass on a lie.  Same for
    the shared-store campaign rerun.
    """
    failures = []
    checks = (
        ("sweep_memo_hit_s", "memo_hits", "memo_misses"),
        ("campaign_shared_store_s", "campaign_hits", "campaign_misses"),
    )
    for stage, hits_key, misses_key in checks:
        if stage not in stages:
            continue
        hits = store.get(hits_key)
        misses = store.get(misses_key)
        if not hits:
            failures.append(
                f"{stage}: the stage ran but the store section counts no "
                f"{hits_key} — the replay sweep is not hitting the store"
            )
        if misses:
            failures.append(
                f"{stage}: the store section counts {misses} {misses_key} "
                f"on a store the same run just populated — scenario "
                f"fingerprints are no longer stable across sweeps"
            )
    return failures


#: The same-run factor the batched-LP exact sweep must beat the
#: scenario-at-a-time route by (the acceptance bar is 3x on >=64
#: same-shape scenarios; both stages time the same machine in the same
#: session, so no noise tolerance applies).
BATCHED_LP_SPEEDUP = 3.0

#: How many scenarios the ``sweep_independent_n40_s`` stage solves (the
#: n=40 Waxman context's single-failure cases, one per controller).
#: The batched stage solves 70, so the cross-stage bound below compares
#: *per-scenario* cost — the raw stage walls time different workloads.
INDEPENDENT_N40_SCENARIOS = 5


def load_batched(path: Path) -> dict[str, object]:
    """The ``batched`` section; empty for pre-section headlines."""
    batched = load_headline(path).get("batched", {})
    if not isinstance(batched, dict):
        raise SystemExit(f"{path}: batched must be a mapping")
    return batched


def compare_batched_lp(
    stages: dict[str, float],
    batched: dict[str, object],
    speedup: float = BATCHED_LP_SPEEDUP,
) -> list[str]:
    """Failure messages when block-diagonal LP batching stopped paying.

    Three same-run invariants, all vacuous when the batched stage never
    ran.  First, the batched sweep must beat the scenario-at-a-time
    baseline it was timed against in the same session by ``speedup``.
    Second, its *per-scenario* cost must stay at or below the
    independent sparse route's (``sweep_batched_lp_s / 70`` vs
    ``sweep_independent_n40_s / 5`` — the stages time different
    workloads, so the raw walls are not comparable): stacking may never
    cost more per scenario than plain per-scenario solving.  Third, the
    ``batched`` section must show every scenario's block carrying a
    per-block LP-bound certificate: a batch whose members quietly fell
    back re-times the scenario-at-a-time solver, and the speedup guard
    would pass on a lie.
    """
    batched_s = stages.get("sweep_batched_lp_s")
    if batched_s is None:
        return []
    failures = []
    baseline_s = stages.get("sweep_batched_lp_baseline_s")
    if baseline_s is not None and batched_s * speedup > baseline_s:
        failures.append(
            f"sweep_batched_lp_s: {batched_s:.4f}s is not {speedup:g}x faster "
            f"than the same run's scenario-at-a-time "
            f"sweep_batched_lp_baseline_s {baseline_s:.4f}s — block-diagonal "
            f"batching has regressed"
        )
    independent_s = stages.get("sweep_independent_n40_s")
    scenarios = batched.get("scenarios")
    if independent_s is not None and scenarios:
        per_batched = batched_s / int(scenarios)
        per_independent = independent_s / INDEPENDENT_N40_SCENARIOS
        if per_batched > per_independent:
            failures.append(
                f"sweep_batched_lp_s: {1000 * per_batched:.2f} ms/scenario "
                f"exceeds the same run's independent sparse route "
                f"({1000 * per_independent:.2f} ms/scenario from "
                f"sweep_independent_n40_s) — stacking is costing more than "
                f"it saves"
            )
    certificates = batched.get("certificates")
    if not scenarios:
        failures.append(
            "sweep_batched_lp_s: the stage ran but the batched section "
            "counts no scenarios — per-block provenance went dark"
        )
    elif certificates != scenarios:
        failures.append(
            f"sweep_batched_lp_s: only {certificates or 0} of {scenarios} "
            f"blocks carry a per-block certificate — batch members are "
            f"quietly falling back to scenario-at-a-time solves"
        )
    return failures


def compare_executor_reuse(
    current: dict[str, float], speedup: float = REUSE_SPEEDUP
) -> list[str]:
    """Failure messages when warm-executor reuse stopped paying off.

    Both stages come from the *same* run on the same machine, so unlike
    the cross-run comparisons no noise tolerance applies beyond the
    generous required factor itself.  Runs predating the executor (or
    with either stage skipped) pass vacuously.
    """
    reuse_s = current.get("sweep_reuse_s")
    cold_s = current.get("sweep_shm_s")
    if reuse_s is None or cold_s is None:
        return []
    if reuse_s > cold_s / speedup:
        return [
            f"sweep_reuse_s: {reuse_s:.4f}s is not {speedup:g}x faster than "
            f"the same run's cold sweep_shm_s {cold_s:.4f}s — warm-executor "
            f"reuse has regressed"
        ]
    return []


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    floor_s: float = DEFAULT_FLOOR_S,
) -> list[str]:
    """Human-readable failure messages; empty when the run is acceptable."""
    failures = []
    for stage, base_s in sorted(baseline.items()):
        cur_s = current.get(stage)
        if cur_s is None:
            failures.append(f"{stage}: missing from current run (baseline {base_s:.4f}s)")
            continue
        limit = tolerance * max(base_s, floor_s)
        if cur_s > limit:
            failures.append(
                f"{stage}: {cur_s:.4f}s exceeds {tolerance:g}x baseline "
                f"(baseline {base_s:.4f}s, limit {limit:.4f}s)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--floor-s", type=float, default=DEFAULT_FLOOR_S)
    parser.add_argument(
        "--degraded-slack", type=int, default=DEFAULT_DEGRADED_SLACK
    )
    args = parser.parse_args(argv)

    current = load_stages(args.current)
    baseline = load_stages(args.baseline)
    failures = compare(current, baseline, args.tolerance, args.floor_s)
    failures += compare_executor_reuse(current)
    failures += compare_memo_hit(current)
    failures += compare_supervised_overhead(current)
    cur_store = load_store(args.current)
    failures += compare_store_visibility(current, cur_store)
    cur_batched = load_batched(args.current)
    failures += compare_batched_lp(current, cur_batched)
    if cur_batched:
        print(
            "batched: "
            + " ".join(f"{k}={v}" for k, v in sorted(cur_batched.items()))
        )
    if cur_store:
        print(
            "store: "
            + " ".join(f"{k}={v}" for k, v in sorted(cur_store.items()))
        )
    cur_degraded = load_degraded(args.current)
    failures += compare_degraded(
        cur_degraded, load_degraded(args.baseline), args.degraded_slack
    )
    failures += compare_quarantine_visibility(current, cur_degraded)
    cur_fanout = load_fanout(args.current)
    failures += compare_fanout(cur_fanout, load_fanout(args.baseline))
    if cur_fanout:
        print(
            "fanout: transport={transport} payload={payload_bytes}B "
            "shared={shared_bytes}B pickle-baseline={pickle_payload_bytes}B".format(
                **{
                    k: cur_fanout.get(k, "?")
                    for k in (
                        "transport",
                        "payload_bytes",
                        "shared_bytes",
                        "pickle_payload_bytes",
                    )
                }
            )
        )
    if sum(cur_degraded.values()):
        detail = ", ".join(
            f"{name}={count}" for name, count in sorted(cur_degraded.items()) if count
        )
        print(f"degraded solves: {detail}")

    width = max(len(s) for s in sorted(set(current) | set(baseline)))
    for stage in sorted(set(current) | set(baseline)):
        cur = current.get(stage)
        base = baseline.get(stage)
        cur_txt = f"{cur:.4f}s" if cur is not None else "missing"
        base_txt = f"{base:.4f}s" if base is not None else "new stage"
        ratio = f"{cur / base:6.2f}x" if cur is not None and base else "      -"
        print(f"{stage:<{width}}  current {cur_txt:>9}  baseline {base_txt:>9}  {ratio}")

    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: all stages within {args.tolerance:g}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
