"""Shared fixtures for the benchmark harness.

The Optimal solver is the expensive part, so each failure sweep (with all
four paper algorithms, Optimal included) runs exactly once per pytest
session and is shared by every figure benchmark.
"""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.runner import PAPER_ALGORITHMS, run_failure_sweep
from repro.experiments.scenarios import default_att_context

#: Per-case ceiling for the exact solver in benchmarks.
OPTIMAL_TIME_LIMIT_S = 120.0


@pytest.fixture(scope="session")
def context():
    """The paper's default evaluation context."""
    return default_att_context()


@pytest.fixture(scope="session")
def sweep_1(context):
    """All 6 one-failure cases, all four algorithms."""
    return run_failure_sweep(context, 1, PAPER_ALGORITHMS, OPTIMAL_TIME_LIMIT_S)


@pytest.fixture(scope="session")
def sweep_2(context):
    """All 15 two-failure cases, all four algorithms."""
    return run_failure_sweep(context, 2, PAPER_ALGORITHMS, OPTIMAL_TIME_LIMIT_S)


@pytest.fixture(scope="session")
def sweep_3(context):
    """All 20 three-failure cases, all four algorithms."""
    return run_failure_sweep(context, 3, PAPER_ALGORITHMS, OPTIMAL_TIME_LIMIT_S)


@pytest.fixture(scope="session")
def instance_13_20(context):
    """The paper's flagship two-failure instance."""
    return context.instance(FailureScenario(frozenset({13, 20})))


@pytest.fixture(scope="session")
def instance_5_13_20(context):
    """A tight three-failure instance."""
    return context.instance(FailureScenario(frozenset({5, 13, 20})))
