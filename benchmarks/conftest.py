"""Shared fixtures for the benchmark harness.

The Optimal solver is the expensive part, so each failure sweep (with all
four paper algorithms, Optimal included) runs exactly once per pytest
session and is shared by every figure benchmark.

The harness also tracks wall-clock per stage — context build, coefficient
table build, each sweep, and per-algorithm solve totals — and writes the
machine-readable ``BENCH_headline.json`` at the repo root when the
session ends, so the perf trajectory is recorded by every benchmark run
(and checked in CI).  See ``docs/performance.md`` for the format.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.runner import PAPER_ALGORITHMS, run_failure_sweep
from repro.experiments.scenarios import default_att_context

#: Per-case ceiling for the exact solver in benchmarks.
OPTIMAL_TIME_LIMIT_S = 120.0

#: Where the machine-readable stage report lands (repo root).
BENCH_HEADLINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_headline.json"

#: Wall-clock seconds per named stage, accumulated across the session.
_STAGES: dict[str, float] = {}
#: Total solver seconds per algorithm, accumulated across all sweeps.
_ALGORITHM_SOLVE_S: dict[str, float] = {}
#: Solves per sweep that ran on a fallback path (pm-fallback, ladder
#: demotion, serial-fallback) — a mass degradation here means the exact
#: solver silently died and "performance" is really the heuristic's.
_DEGRADED_SOLVES: dict[str, int] = {}
#: Fan-out transport summary (payload bytes, worker init) for the pool
#: sweep — written as the headline's ``fanout`` section so CI can catch
#: the shm route silently regressing to pickle-scale payloads.
_FANOUT: dict[str, object] = {}
#: Cross-run solve-store counters (hits/misses/dedup per memo stage) —
#: written as the headline's ``store`` section so CI can see whether the
#: memo-hit stage actually replayed from the store or quietly re-solved.
_STORE: dict[str, object] = {}
#: Block-diagonal LP batching provenance of the batched exact sweep —
#: written as the headline's ``batched`` section so CI can assert every
#: block carried a per-block certificate instead of quietly falling
#: back to scenario-at-a-time solves.
_BATCHED: dict[str, object] = {}


def record_stage(name: str, seconds: float) -> None:
    """Accumulate wall-clock seconds under a stage name."""
    _STAGES[name] = _STAGES.get(name, 0.0) + seconds


def record_sweep(name: str, seconds: float, results) -> None:
    """Record a sweep's wall clock, per-algorithm solve time, and how
    many of its solves degraded to a fallback path.

    A scenario the supervisor quarantined to the parent-serial ladder
    (``meta["supervisor"]["quarantined"]``) counts as one degraded solve
    even when the ladder itself never demoted: quarantine is a fallback
    route, and hiding it would let a chaos stage read as a clean run.
    """
    record_stage(name, seconds)
    degraded = 0
    for result in results:
        if result.meta.get("supervisor", {}).get("quarantined"):
            degraded += 1
        for algorithm, solution in result.solutions.items():
            _ALGORITHM_SOLVE_S[algorithm] = (
                _ALGORITHM_SOLVE_S.get(algorithm, 0.0) + solution.solve_time_s
            )
            if solution.meta.get("degraded") or (
                solution.meta.get("solver") == "pm-fallback"
            ):
                degraded += 1
    _DEGRADED_SOLVES[name] = _DEGRADED_SOLVES.get(name, 0) + degraded


def record_fanout(summary: dict[str, object]) -> None:
    """Record the pool sweep's fan-out transport summary.

    ``summary`` is a :meth:`~repro.perf.shm.FanoutStats.to_dict` payload
    (as surfaced by :func:`repro.perf.sweep.fanout_summary`), optionally
    extended with ``pickle_payload_bytes`` — the payload size the classic
    pickle route shipped for the same plan, the denominator for the
    zero-copy saving.
    """
    _FANOUT.update(summary)


def record_store(summary: dict[str, object]) -> None:
    """Record solve-store hit/miss/dedup counters for the headline.

    Callers prefix their keys by stage (``memo_hits``,
    ``campaign_hits``, ...); the merged dict lands as the headline's
    ``store`` section.
    """
    _STORE.update(summary)


def record_batched(summary: dict[str, object]) -> None:
    """Record the batched exact sweep's per-block provenance counters.

    ``summary`` aggregates the ``meta["batch"]`` stamps of one batched
    sweep: scenarios, how many rode the stacked route vs fell back, and
    how many carried a per-block certificate.  Lands as the headline's
    ``batched`` section (``check_headline.py`` asserts the certificate
    provenance is present whenever the stage is).
    """
    _BATCHED.update(summary)


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_headline.json if any stage was timed this session."""
    if not _STAGES:
        return
    payload = {
        "schema": 1,
        "unit": "seconds",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "stages": dict(sorted(_STAGES.items())),
        "per_algorithm_solve_s": dict(sorted(_ALGORITHM_SOLVE_S.items())),
        "degraded_solves": dict(sorted(_DEGRADED_SOLVES.items())),
        "sweep_total_s": sum(v for k, v in _STAGES.items() if k.startswith("sweep_")),
    }
    if _FANOUT:
        payload["fanout"] = dict(sorted(_FANOUT.items()))
    if _STORE:
        payload["store"] = dict(sorted(_STORE.items()))
    if _BATCHED:
        payload["batched"] = dict(sorted(_BATCHED.items()))
    BENCH_HEADLINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _timed(stage: str, thunk):
    start = time.perf_counter()
    value = thunk()
    record_stage(stage, time.perf_counter() - start)
    return value


@pytest.fixture(scope="session")
def context():
    """The paper's default evaluation context, with the table prebuilt."""
    ctx = _timed("context_build_s", default_att_context)
    _timed("table_build_s", ctx.materialize_table)
    return ctx


def _sweep_fixture(context, n_failures: int):
    start = time.perf_counter()
    results = run_failure_sweep(context, n_failures, PAPER_ALGORITHMS, OPTIMAL_TIME_LIMIT_S)
    record_sweep(f"sweep_{n_failures}_s", time.perf_counter() - start, results)
    return results


@pytest.fixture(scope="session")
def sweep_1(context):
    """All 6 one-failure cases, all four algorithms."""
    return _sweep_fixture(context, 1)


@pytest.fixture(scope="session")
def sweep_2(context):
    """All 15 two-failure cases, all four algorithms."""
    return _sweep_fixture(context, 2)


@pytest.fixture(scope="session")
def sweep_3(context):
    """All 20 three-failure cases, all four algorithms."""
    return _sweep_fixture(context, 3)


@pytest.fixture(scope="session")
def instance_13_20(context):
    """The paper's flagship two-failure instance."""
    return context.instance(FailureScenario(frozenset({13, 20})))


@pytest.fixture(scope="session")
def instance_5_13_20(context):
    """A tight three-failure instance."""
    return context.instance(FailureScenario(frozenset({5, 13, 20})))
