"""The paper's headline claims, asserted end to end.

Abstract: "PM outperforms existing switch-level solutions by maintaining
balanced programmability and increasing the total programmability of
recovered offline flows up to 315% under two controller failures and
340% under three controller failures."

Our reconstruction reproduces the *shape* of these claims — PM dominates
RetroFlow everywhere, with the maximum advantage at exactly the cases
the paper highlights ((13, 20) and the three-failure hub cases) — at
smaller absolute factors (see EXPERIMENTS.md for the gap analysis).
"""

from __future__ import annotations

from repro.experiments.figures import failure_figure_data, headline_ratios
from repro.experiments.report import render_table
from repro.pm.algorithm import solve_pm


def test_headline_report(benchmark, context, sweep_2, sweep_3, capsys):
    """Print and assert the headline PM-vs-RetroFlow ratios."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for n_failures, sweep, paper_max in ((2, sweep_2, 315.0), (3, sweep_3, 340.0)):
        data = failure_figure_data(context, n_failures, results=sweep)
        ratios = headline_ratios(data)
        rows.append(
            (
                f"{n_failures} failures",
                f"{ratios['min_pct']:.0f}%",
                f"{ratios['max_pct']:.0f}%",
                f"{ratios['mean_pct']:.0f}%",
                ratios["argmax_case"],
                f"{paper_max:.0f}%",
            )
        )
    with capsys.disabled():
        print()
        print("=== Headline: PM total programmability vs RetroFlow ===")
        print(
            render_table(
                ("scenario", "min", "max", "mean", "argmax case", "paper max"),
                rows,
            )
        )
    # Shape: the advantage grows with failure severity and the flagship
    # two-failure case is (13, 20), as in the paper.
    two, three = rows
    assert two[4] == "(13, 20)"
    assert float(three[3].rstrip("%")) > float(two[3].rstrip("%"))


def test_balanced_programmability_claim(benchmark, context, sweep_2, capsys):
    """Abstract claim: PM maintains balanced programmability — every
    recoverable flow is recovered to at least the short-path bound (2)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for result in sweep_2:
        evaluation = result.evaluations["pm"]
        values = evaluation.programmability_values()
        assert min(values) >= 2
        assert evaluation.least_programmability >= 2


def test_benchmark_pm_all_two_failure_cases(benchmark, context):
    """Time PM across all 15 two-failure instances (one full Fig. 5 row)."""
    from repro.control.failures import enumerate_failure_scenarios

    instances = [
        context.instance(s) for s in enumerate_failure_scenarios(context.plane, 2)
    ]

    def run_all():
        return [solve_pm(instance) for instance in instances]

    solutions = benchmark(run_all)
    assert len(solutions) == 15
