"""Use the library on your own WAN, not just the paper's ATT instance.

Generates a 30-node Waxman WAN over US geography, places four controllers
with a nearest-site domain partition, fails two of them, and compares PM
against the baselines — exactly the workflow for evaluating recovery on a
proprietary topology.  Also shows loading a Topology Zoo GML file.

Run with::

    python examples/custom_wan.py
"""

from __future__ import annotations

from repro import (
    FailureScenario,
    custom_context,
    evaluate_solution,
    get_algorithm,
    waxman_topology,
)
from repro.experiments.report import render_table


def main() -> None:
    # 1. A synthetic 30-node WAN (swap in load_zoo_topology("my.gml") for
    #    a real Topology Zoo file).
    topology = waxman_topology(30, alpha=0.6, beta=0.35, seed=11)
    print(f"{topology.name}: {topology.n_nodes} nodes, {topology.n_links} links")

    # 2. Four controllers; domains form around the nearest site.  Size
    #    each controller the way an operator provisions: its own baseline
    #    load plus a fixed recovery headroom (the paper's uniform 500
    #    plays the same role on the ATT instance).
    sites = (0, 8, 16, 24)
    headroom = 150
    from repro import all_pairs_flows, switch_flow_counts
    from repro.topology import nearest_site_partition

    gamma = switch_flow_counts(all_pairs_flows(topology, weight="hops"))
    domains = nearest_site_partition(topology, sites)
    capacity = {
        controller: sum(gamma[s] for s in members) + headroom
        for controller, members in domains.items()
    }
    context = custom_context(topology, controller_sites=sites, capacity=capacity)
    loads = context.plane.domain_loads(context.flows)
    spare = context.plane.spare_capacity(context.flows)
    print(f"capacity per controller: {capacity}")
    print(f"domain loads: {loads}")
    print(f"spare capacity: {spare}\n")

    # 3. Fail two controllers and compare algorithms.
    scenario = FailureScenario(frozenset({sites[0], sites[1]}))
    instance = context.instance(scenario)
    print(f"failure {scenario.name}: {instance.describe()}\n")

    rows = []
    for name in ("nearest", "retroflow", "pg", "pm"):
        evaluation = evaluate_solution(instance, get_algorithm(name)(instance))
        rows.append(
            (
                name,
                evaluation.least_programmability,
                evaluation.total_programmability,
                f"{100 * evaluation.recovery_fraction:.1f}%",
                f"{evaluation.recovered_switches}/{evaluation.offline_switches}",
                f"{evaluation.per_flow_overhead_ms:.3f}",
            )
        )
    print(
        render_table(
            ("algorithm", "least r", "total pro", "recovered", "switches", "overhead (ms)"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
