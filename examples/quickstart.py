"""Quickstart: recover path programmability after a controller failure.

Builds the paper's default SD-WAN (the ATT backbone, six controllers at
capacity 500), fails controllers 13 and 20 — the paper's flagship case —
and runs ProgrammabilityMedic, printing the metrics the paper reports.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FailureScenario,
    default_att_context,
    evaluate_solution,
    solve_pm,
)


def main() -> None:
    # 1. The evaluation setup from Section VI-A of the paper.
    context = default_att_context()
    print(
        f"SD-WAN: {context.topology.name} — {context.topology.n_nodes} switches, "
        f"{context.topology.n_directed_links} directed links, "
        f"{len(context.flows)} flows, "
        f"{context.plane.n_controllers} controllers"
    )

    # 2. Fail controllers 13 (Texas) and 20 (Midwest) simultaneously.
    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)
    print(f"\nFailure {scenario.name}: {instance.describe()}")
    print(
        f"Offline switches: "
        f"{', '.join(context.topology.label(s) for s in instance.switches)}"
    )

    # 3. Recover with the PM heuristic (Algorithm 1).
    solution = solve_pm(instance)
    evaluation = evaluate_solution(instance, solution)

    # 4. Report the paper's metrics.
    print(f"\nPM recovery ({1000 * solution.solve_time_s:.1f} ms):")
    print(f"  least programmability (r) : {evaluation.least_programmability}")
    print(f"  total programmability     : {evaluation.total_programmability}")
    print(
        f"  recovered flows           : {evaluation.recovered_flows}"
        f"/{evaluation.recoverable_flows} "
        f"({100 * evaluation.recovery_fraction:.1f}%)"
    )
    print(
        f"  recovered switches        : {evaluation.recovered_switches}"
        f"/{evaluation.offline_switches}"
    )
    print(f"  per-flow overhead         : {evaluation.per_flow_overhead_ms:.3f} ms")
    print("\nSwitch-controller mapping (X):")
    for switch, controller in sorted(solution.mapping.items()):
        sdn_count = sum(1 for s, _ in solution.sdn_pairs if s == switch)
        print(
            f"  {context.topology.label(switch):15s} (s{switch}) -> C{controller} "
            f"({sdn_count} flows in SDN mode, gamma={instance.gamma[switch]})"
        )


if __name__ == "__main__":
    main()
