"""Why programmability matters: relieving a traffic surge after failures.

The paper's introduction motivates path programmability with network
performance under traffic variation.  This example quantifies that
end-to-end: controllers 13 and 20 fail, traffic through the Dallas
region surges 3x, and the network must shift load off the hottest links —
but only *programmable* flows can move.  We compare the achievable
max-link-utilization (MLU) when the failed region was recovered by PM,
by RetroFlow, and not at all.

Run with::

    python examples/traffic_surge.py
"""

from __future__ import annotations

from repro import FailureScenario, Flow, default_att_context, get_algorithm
from repro.experiments.report import render_table
from repro.fmssm.solution import RecoverySolution
from repro.te import (
    TrafficEngineer,
    betweenness_capacities,
    controllable_nodes,
    max_link_utilization,
    programmable_switches,
)

SURGE_NODE = 13  # Dallas
SURGE_FACTOR = 3.0


def main() -> None:
    context = default_att_context()
    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)

    # Traffic surge: flows through Dallas triple their demand.
    surged = {
        f.flow_id: Flow(
            f.src, f.dst, f.path,
            demand=SURGE_FACTOR if SURGE_NODE in f.path else 1.0,
        )
        for f in context.flows
    }
    capacities = betweenness_capacities(context.topology, base=60.0, scale=4.0)
    baseline = max_link_utilization(context.topology, surged.values(), capacities)
    print(
        f"Failure {scenario.name}; {SURGE_FACTOR:.0f}x surge through "
        f"{context.topology.label(SURGE_NODE)}."
    )
    print(f"MLU with no rerouting at all: {baseline:.3f}\n")

    candidates = [("no recovery", RecoverySolution(algorithm="none"))]
    for name in ("retroflow", "pg", "pm"):
        candidates.append((name, get_algorithm(name)(instance)))

    rows = []
    for name, solution in candidates:
        programmable = programmable_switches(instance, solution, surged.values())
        nodes = controllable_nodes(context.plane, scenario, solution)
        engineer = TrafficEngineer(context.topology, capacities, allowed_nodes=nodes)
        result = engineer.relieve(surged, programmable, max_actions=60)
        rows.append(
            (
                name,
                f"{result.mlu_after:.3f}",
                f"{100 * result.improvement:.1f}%",
                len(result.actions),
            )
        )
    print(render_table(("recovered by", "MLU after TE", "relief", "reroutes"), rows))
    print(
        "\nOnly flows left programmable by the recovery can be moved: the"
        "\nbetter the programmability recovery, the more congestion the"
        "\nnetwork can shed — the application-level payoff of PM."
    )


if __name__ == "__main__":
    main()
