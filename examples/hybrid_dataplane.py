"""What path programmability buys: rerouting on the hybrid data plane.

Fails two controllers, recovers with PM, installs the result on the
simulated hybrid SDN/OSPF data plane (Fig. 2 of the paper), and then acts
as the controller: it walks a packet along its recovered flow, reroutes
the flow at a recovered switch onto an alternate path, and walks a second
packet to show the path change take effect — while a legacy-mode flow
keeps following OSPF.

Run with::

    python examples/hybrid_dataplane.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    FailureScenario,
    NetworkDataPlane,
    Packet,
    SwitchMode,
    default_att_context,
    solve_pm,
)


def fmt_path(context, path) -> str:
    return " -> ".join(f"{context.topology.label(n)}({n})" for n in path)


def main() -> None:
    context = default_att_context()
    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)
    solution = solve_pm(instance)

    plane = NetworkDataPlane(
        context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
    )
    plane.apply_recovery(instance, solution)
    print(
        f"Recovered {len(solution.sdn_pairs)} (switch, flow) pairs in SDN mode "
        f"across {len(solution.mapping)} remapped switches.\n"
    )

    # Pick a recovered pair with a loop-free alternate path.
    topology = context.topology
    for switch, flow_id in sorted(solution.sdn_pairs):
        flow = instance.flows[flow_id]
        original_next = flow.next_hop(switch)
        prefix = set(flow.path[: flow.path.index(switch) + 1])
        sub = topology.graph.subgraph(n for n in topology.graph if n != switch)
        for neighbor in topology.neighbors(switch):
            if neighbor == original_next or neighbor in prefix or neighbor not in sub:
                continue
            if not nx.has_path(sub, neighbor, flow.dst):
                continue
            alternate = tuple(nx.shortest_path(sub, neighbor, flow.dst))
            if prefix & set(alternate):
                continue

            print(f"Flow {flow_id} ({topology.label(flow.src)} -> {topology.label(flow.dst)})")
            before = plane.forward(Packet(*flow_id))
            print(f"  before reroute: {fmt_path(context, before)}")

            # The controller reprograms the path at the recovered switch.
            plane.install_path(flow_id, (switch, *alternate))
            after = plane.forward(Packet(*flow_id))
            print(
                f"  rerouted at {topology.label(switch)}({switch}) "
                f"via {topology.label(neighbor)}({neighbor}):"
            )
            print(f"  after reroute : {fmt_path(context, after)}\n")

            # A legacy-mode flow is NOT programmable: it matches no flow
            # entry and falls through to OSPF.
            for legacy in instance.flows.values():
                legacy_hops = [
                    s for s in legacy.transit_switches
                    if s in instance.switches
                    and (s, legacy.flow_id) not in solution.sdn_pairs
                ]
                if legacy_hops:
                    realized = plane.forward(Packet(*legacy.flow_id))
                    print(
                        f"Legacy-mode flow {legacy.flow_id} (no entry at "
                        f"{topology.label(legacy_hops[0])}) follows OSPF unchanged:"
                    )
                    print(f"  {fmt_path(context, realized)}")
                    break
            return
    raise SystemExit("no reroutable recovered pair found")


if __name__ == "__main__":
    main()
