"""Reproduce Fig. 5's sweep: all two-controller-failure combinations.

Runs PM, PG, RetroFlow (and optionally Optimal) on all 15 two-failure
combinations of the ATT setup and prints the per-case comparison table —
the series behind Figs. 5(a)-(f) of the paper.

Run with::

    python examples/failure_sweep.py            # heuristics only (fast)
    python examples/failure_sweep.py --optimal  # include the exact solver
"""

from __future__ import annotations

import argparse

from repro import default_att_context, run_failure_sweep
from repro.experiments.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--optimal", action="store_true",
        help="also run the exact solver (minutes instead of seconds)",
    )
    parser.add_argument(
        "--failures", type=int, default=2, choices=(1, 2, 3),
        help="number of simultaneous controller failures",
    )
    args = parser.parse_args()

    algorithms = ("retroflow", "pg", "pm") + (("optimal",) if args.optimal else ())
    context = default_att_context()
    results = run_failure_sweep(
        context, args.failures, algorithms, optimal_time_limit_s=120.0
    )

    rows = []
    for result in results:
        relative = result.relative_total_programmability("retroflow")
        pm = result.evaluations["pm"]
        retro = result.evaluations["retroflow"]
        row = [
            result.name,
            pm.least_programmability,
            retro.least_programmability,
            f"{100 * relative['pm']:.0f}%",
            f"{100 * pm.recovery_fraction:.0f}%",
            f"{100 * retro.recovery_fraction:.0f}%",
            f"{pm.per_flow_overhead_ms:.2f}",
        ]
        if args.optimal:
            optimal = result.evaluations["optimal"]
            row.append(
                f"{100 * relative['optimal']:.0f}%" if optimal.feasible else "n/a"
            )
        rows.append(tuple(row))

    headers = [
        "case",
        "pm r",
        "rf r",
        "pm/rf total",
        "pm rec",
        "rf rec",
        "pm ovh (ms)",
    ]
    if args.optimal:
        headers.append("opt/rf total")
    print(f"{args.failures} controller failure(s), {len(results)} combinations:")
    print(render_table(headers, rows))

    ratios = [
        result.relative_total_programmability("retroflow")["pm"] for result in results
    ]
    best = max(zip(ratios, (r.name for r in results)))
    print(
        f"\nPM improves total programmability over RetroFlow by up to "
        f"{100 * best[0]:.0f}% (case {best[1]}); the paper reports up to "
        f"{'315%' if args.failures == 2 else '340%' if args.failures == 3 else '100%'} "
        f"on its ATT instance."
    )


if __name__ == "__main__":
    main()
