"""Predictable recovery: how long until programmability is back?

The paper's title promises *predictable* recovery.  This example runs
the recovery-timeline simulation for PM, RetroFlow and PG after a double
failure: failure detection, recovery computation, master handover, and
sequential flow-mod installation — with PG paying the FlowVisor
middle-layer processing per request (the paper's reliability argument
against flow-level middle layers).

Run with::

    python examples/recovery_timeline.py
"""

from __future__ import annotations

from repro import FailureScenario, default_att_context, get_algorithm
from repro.experiments.report import render_table
from repro.simulation import TimelineParameters, simulate_recovery_timeline
from repro.types import FLOWVISOR_PROCESSING_MS


def main() -> None:
    context = default_att_context()
    scenario = FailureScenario(frozenset({13, 20}))
    instance = context.instance(scenario)
    print(f"Failure {scenario.name}: {instance.describe()}\n")

    rows = []
    for name in ("retroflow", "pg", "pm"):
        solution = get_algorithm(name)(instance)
        parameters = TimelineParameters(
            detection_delay_ms=100.0,
            middle_layer_ms=FLOWVISOR_PROCESSING_MS if name == "pg" else 0.0,
        )
        report = simulate_recovery_timeline(instance, solution, parameters)
        rows.append(
            (
                name,
                len(report.flow_recovered_ms),
                f"{report.computation_done_ms:.1f}",
                f"{report.mean_flow_recovery_ms:.0f}",
                f"{report.p95_flow_recovery_ms:.0f}",
                f"{report.max_flow_recovery_ms:.0f}",
                f"{report.completed_ms:.0f}",
            )
        )
    print(
        render_table(
            (
                "algorithm",
                "flows restored",
                "compute done (ms)",
                "mean (ms)",
                "p95 (ms)",
                "max (ms)",
                "all done (ms)",
            ),
            rows,
        )
    )
    print(
        "\nPM and PG restore the same flow set; RetroFlow finishes earlier"
        "\nonly because it restores far fewer flows.  PG spreads installs"
        "\nacross controllers through its middle layer (at +0.48 ms per"
        "\nrequest and an extra device to fail), while PM's switch-level"
        "\nmapping serializes the hub switch's installs on one controller —"
        "\nthe timeline cost of avoiding the middle layer."
    )


if __name__ == "__main__":
    main()
