"""Exact solving vs the PM heuristic: quality and cost side by side.

Solves the flagship (13, 20) failure with the weighted Optimal (problem
P'), the two-stage lexicographic Optimal, and the PM heuristic, showing
the paper's trade-off: PM reaches the exact solvers' balanced
programmability at a tiny fraction of their runtime — and keeps working
in capacity-short cases where the exact solvers report infeasibility.

Run with::

    python examples/optimal_vs_pm.py
"""

from __future__ import annotations

from repro import (
    FailureScenario,
    default_att_context,
    evaluate_solution,
    solve_optimal,
    solve_pm,
    solve_two_stage,
)
from repro.experiments.report import render_table


def row(name, evaluation, solution):
    if not evaluation.feasible:
        return (name, "n/a", "n/a", "n/a", f"{solution.solve_time_s:.2f}s")
    return (
        name,
        evaluation.least_programmability,
        evaluation.total_programmability,
        f"{100 * evaluation.recovery_fraction:.1f}%",
        f"{solution.solve_time_s:.3f}s",
    )


def main() -> None:
    context = default_att_context()

    print("=== moderate case: failure (13, 20) ===")
    instance = context.instance(FailureScenario(frozenset({13, 20})))
    rows = []
    for name, solver in (
        ("optimal (weighted)", lambda: solve_optimal(instance, time_limit_s=300)),
        ("optimal (two-stage)", lambda: solve_two_stage(instance, time_limit_s=300)),
        ("pm (heuristic)", lambda: solve_pm(instance)),
    ):
        solution = solver()
        rows.append(row(name, evaluate_solution(instance, solution), solution))
    print(render_table(("solver", "least r", "total pro", "recovered", "time"), rows))

    print("\n=== capacity-short case: failure (5, 13, 20) ===")
    tight = context.instance(FailureScenario(frozenset({5, 13, 20})))
    rows = []
    for name, solver in (
        ("optimal (weighted)", lambda: solve_optimal(tight, time_limit_s=120)),
        ("pm (heuristic)", lambda: solve_pm(tight)),
    ):
        solution = solver()
        rows.append(row(name, evaluate_solution(tight, solution), solution))
    print(render_table(("solver", "least r", "total pro", "recovered", "time"), rows))
    print(
        "\nWith recoverable flows exceeding the controllers' spare capacity,"
        "\nthe exact solver (under the paper's full-recovery requirement) has"
        "\nno result — the heuristic still recovers nearly everything."
    )


if __name__ == "__main__":
    main()
