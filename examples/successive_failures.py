"""Successive controller failures: recovery recomputed after each loss.

The paper notes controllers "may fail simultaneously or fail
successively".  This example fails controllers one at a time
(13 -> 20 -> 5), recomputes PM recovery at each stage, and tracks how
programmability and recovery degrade as the control plane shrinks —
including the stage where spare capacity can no longer cover every
recoverable flow.

Run with::

    python examples/successive_failures.py
"""

from __future__ import annotations

from repro import default_att_context, evaluate_solution, solve_pm, successive_scenarios
from repro.experiments.report import render_table


def main() -> None:
    context = default_att_context()
    order = [13, 20, 5]
    print(f"controllers failing in order: {order}\n")

    rows = []
    for scenario in successive_scenarios(order):
        instance = context.instance(scenario)
        evaluation = evaluate_solution(instance, solve_pm(instance))
        overloaded = len(instance.recoverable_flows) > instance.total_spare
        rows.append(
            (
                scenario.name,
                instance.n_switches,
                instance.n_flows,
                instance.total_spare,
                len(instance.recoverable_flows),
                evaluation.least_programmability,
                f"{100 * evaluation.recovery_fraction:.1f}%",
                "yes" if overloaded else "no",
            )
        )
    print(
        render_table(
            (
                "failed",
                "offline sw",
                "offline flows",
                "spare",
                "recoverable",
                "least r",
                "recovered",
                "capacity short",
            ),
            rows,
        )
    )
    print(
        "\nEach stage is re-solved from scratch: PM always produces a plan,"
        "\nand once recoverable flows exceed total spare capacity (final"
        "\nstage), recovery becomes partial — the regime where the paper's"
        "\nOptimal has no result but the heuristic still degrades gracefully."
    )


if __name__ == "__main__":
    main()
