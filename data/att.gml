graph [
  Network "ATT"
  directed 0
  node [
    id 0
    label "Seattle"
    Latitude 47.6062
    Longitude -122.3321
  ]
  node [
    id 1
    label "Portland"
    Latitude 45.5152
    Longitude -122.6784
  ]
  node [
    id 2
    label "Los Angeles"
    Latitude 34.0522
    Longitude -118.2437
  ]
  node [
    id 3
    label "San Diego"
    Latitude 32.7157
    Longitude -117.1611
  ]
  node [
    id 4
    label "Salt Lake City"
    Latitude 40.7608
    Longitude -111.891
  ]
  node [
    id 5
    label "Denver"
    Latitude 39.7392
    Longitude -104.9903
  ]
  node [
    id 6
    label "San Francisco"
    Latitude 37.7749
    Longitude -122.4194
  ]
  node [
    id 7
    label "San Jose"
    Latitude 37.3382
    Longitude -121.8863
  ]
  node [
    id 8
    label "Albuquerque"
    Latitude 35.0844
    Longitude -106.6504
  ]
  node [
    id 9
    label "Las Vegas"
    Latitude 36.1699
    Longitude -115.1398
  ]
  node [
    id 10
    label "Houston"
    Latitude 29.7604
    Longitude -95.3698
  ]
  node [
    id 11
    label "San Antonio"
    Latitude 29.4241
    Longitude -98.4936
  ]
  node [
    id 12
    label "Austin"
    Latitude 30.2672
    Longitude -97.7431
  ]
  node [
    id 13
    label "Dallas"
    Latitude 32.7767
    Longitude -96.797
  ]
  node [
    id 14
    label "El Paso"
    Latitude 31.7619
    Longitude -106.485
  ]
  node [
    id 15
    label "Kansas City"
    Latitude 39.0997
    Longitude -94.5786
  ]
  node [
    id 16
    label "Phoenix"
    Latitude 33.4484
    Longitude -112.074
  ]
  node [
    id 17
    label "Atlanta"
    Latitude 33.749
    Longitude -84.388
  ]
  node [
    id 18
    label "Orlando"
    Latitude 28.5383
    Longitude -81.3792
  ]
  node [
    id 19
    label "St. Louis"
    Latitude 38.627
    Longitude -90.1994
  ]
  node [
    id 20
    label "Chicago"
    Latitude 41.8781
    Longitude -87.6298
  ]
  node [
    id 21
    label "Washington DC"
    Latitude 38.9072
    Longitude -77.0369
  ]
  node [
    id 22
    label "New York"
    Latitude 40.7128
    Longitude -74.006
  ]
  node [
    id 23
    label "Philadelphia"
    Latitude 39.9526
    Longitude -75.1652
  ]
  node [
    id 24
    label "Boston"
    Latitude 42.3601
    Longitude -71.0589
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 4
  ]
  edge [
    source 0
    target 6
  ]
  edge [
    source 0
    target 20
  ]
  edge [
    source 1
    target 4
  ]
  edge [
    source 1
    target 6
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 6
  ]
  edge [
    source 2
    target 7
  ]
  edge [
    source 2
    target 9
  ]
  edge [
    source 2
    target 13
  ]
  edge [
    source 2
    target 16
  ]
  edge [
    source 3
    target 16
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 9
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 8
  ]
  edge [
    source 5
    target 13
  ]
  edge [
    source 5
    target 15
  ]
  edge [
    source 5
    target 20
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 20
  ]
  edge [
    source 7
    target 9
  ]
  edge [
    source 8
    target 13
  ]
  edge [
    source 8
    target 14
  ]
  edge [
    source 8
    target 16
  ]
  edge [
    source 9
    target 16
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 12
  ]
  edge [
    source 10
    target 13
  ]
  edge [
    source 10
    target 17
  ]
  edge [
    source 10
    target 18
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 14
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 15
  ]
  edge [
    source 13
    target 17
  ]
  edge [
    source 13
    target 19
  ]
  edge [
    source 14
    target 16
  ]
  edge [
    source 15
    target 19
  ]
  edge [
    source 15
    target 20
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 17
    target 19
  ]
  edge [
    source 17
    target 21
  ]
  edge [
    source 17
    target 22
  ]
  edge [
    source 18
    target 21
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 19
    target 21
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 20
    target 22
  ]
  edge [
    source 20
    target 24
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 23
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 22
    target 24
  ]
]
